//! Cluster scale-out: global tenant shares on an N-node cluster behind a
//! front-end load balancer.
//!
//! Single-machine resource containers divide *one* kernel; this scenario
//! asks the cluster question: can two tenants hold a global 70/30 CPU
//! split across eight independent kernels when one tenant starts confined
//! to a quarter of the machines? Per-node fixed shares alone cannot — a
//! tenant absent from a node consumes nothing there however generous its
//! share elsewhere — so two cluster-level control loops close the gap:
//!
//! - [`simcluster::GlobalShare`] re-parameterizes each tenant's per-node
//!   fixed share every epoch from the observed global charge split, and
//! - the [`simcluster::Orchestrator`] places new server replicas when a
//!   tenant lags its target while every node it runs on is saturated
//!   (and drains the busiest replica of a persistently over-target
//!   tenant), with the front-end's weighted round-robin migrating new
//!   connections to the new layout.
//!
//! The workload is closed-loop non-persistent HTTP: every connection is
//! opened fresh, so each request re-enters the load balancer's WRR pick
//! and traffic follows weight changes within one connection lifetime.
//! Running with `rebalance: false` gives the drift baseline: the gold
//! tenant, present everywhere, swallows the capacity of the six nodes
//! bronze cannot reach (~92/8 instead of 70/30).

use std::cell::RefCell;
use std::rc::Rc;

use httpsim::stats::shared_stats;
use httpsim::ThreadPoolServer;
use rescon::Attributes;
use simcluster::{
    Action, Frontend, GlobalShare, LaneSpec, NodeId, NodeSpec, Orchestrator, OrchestratorConfig,
    TenantRoute, TenantShare, World,
};
use simcore::Nanos;
use simnet::{CidrFilter, IpAddr, Packet};
use simos::{KernelConfig, WorldAction};

use crate::clients::{ClientSpec, HttpClients};

/// Default WRR weight for an active replica.
const BASE_WEIGHT: u32 = 10;

/// Parameters of the cluster tenant experiment.
#[derive(Clone, Debug)]
pub struct ClusterTenantsParams {
    /// Number of backend kernel nodes.
    pub nodes: u32,
    /// CPUs per backend node.
    pub ncpus_per_node: u32,
    /// Target global CPU fraction per tenant (summing to at most 1).
    pub shares: Vec<f64>,
    /// How many nodes each tenant's servers start on (nodes `0..k`);
    /// capped at `nodes`.
    pub initial_replicas: Vec<usize>,
    /// Closed-loop clients per tenant (hosted at the frontend).
    pub clients_per_tenant: usize,
    /// Worker threads per server replica.
    pub pool_size: u32,
    /// CPU burned parsing/handling each request.
    pub parse_cost: Nanos,
    /// Client idle time between a response and the next connection
    /// (0 = closed loop at full speed).
    pub think: Nanos,
    /// Client abandon-and-retry timeout.
    pub timeout: Nanos,
    /// Client exponential retry backoff base.
    pub backoff: Nanos,
    /// Simulated run length.
    pub secs: u64,
    /// Control epoch: share rebalance and orchestrator cadence.
    pub epoch: Nanos,
    /// Final measurement window (the last `measure_secs` of the run).
    pub measure_secs: u64,
    /// Proportional gain of the global share balancer.
    pub gain: f64,
    /// Run the control loops; `false` = drift baseline (static shares,
    /// no placement).
    pub rebalance: bool,
    /// Inter-node lane parameters (latency is the conservative
    /// synchronization quantum).
    pub lane: LaneSpec,
}

impl Default for ClusterTenantsParams {
    fn default() -> Self {
        ClusterTenantsParams {
            nodes: 8,
            ncpus_per_node: 1,
            shares: vec![0.7, 0.3],
            initial_replicas: vec![usize::MAX, 2],
            clients_per_tenant: 50_000,
            pool_size: 8,
            parse_cost: Nanos::from_micros(200),
            think: Nanos::from_secs(1),
            timeout: Nanos::from_secs(1),
            backoff: Nanos::from_millis(100),
            secs: 20,
            epoch: Nanos::from_secs(1),
            measure_secs: 5,
            gain: 0.8,
            rebalance: true,
            lane: LaneSpec::new(Nanos::from_micros(200), 10_000_000_000),
        }
    }
}

impl ClusterTenantsParams {
    /// A reduced-scale preset for tests and CI smoke runs: few clients
    /// with a fat per-request cost, so every node saturates (the regime
    /// the orchestrator needs) while the event count stays small.
    pub fn reduced() -> Self {
        ClusterTenantsParams {
            clients_per_tenant: 96,
            parse_cost: Nanos::from_millis(2),
            think: Nanos::ZERO,
            timeout: Nanos::from_secs(2),
            backoff: Nanos::from_millis(50),
            secs: 16,
            measure_secs: 4,
            ..ClusterTenantsParams::default()
        }
    }
}

/// Result of the cluster tenant experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ClusterTenantsResult {
    /// Number of backend nodes.
    pub nodes: u32,
    /// Total clients across tenants.
    pub clients: usize,
    /// Configured target fractions (normalized).
    pub configured: Vec<f64>,
    /// Measured global CPU fraction per tenant over the final window.
    pub measured: Vec<f64>,
    /// Per-epoch measured global fractions (the convergence trajectory).
    pub epoch_split: Vec<Vec<f64>>,
    /// Replica placements executed, as `(tenant, node)` in order.
    pub placements: Vec<(usize, u32)>,
    /// Replica drains executed, as `(tenant, node)` in order.
    pub drains: Vec<(usize, u32)>,
    /// Final active replica count per tenant.
    pub replicas: Vec<usize>,
    /// Per-tenant throughput over the final window (requests/second).
    pub throughputs: Vec<f64>,
    /// Aggregate throughput (requests/second).
    pub total_throughput: f64,
    /// Total inter-node wire (serialization) time, nanoseconds.
    pub lane_busy_ns: u64,
    /// Total wire time charged to source nodes, nanoseconds; equals
    /// `lane_busy_ns` when the double-entry accounting conserves.
    pub tx_wire_ns: u64,
    /// Whether the wire-time conservation identity held.
    pub conserved: bool,
    /// Packets the frontend forwarded to backends.
    pub forwarded: u64,
    /// Connections the frontend assigned by WRR.
    pub assigned: u64,
    /// Packets the frontend could not route.
    pub unroutable: u64,
    /// Kernel events processed across all nodes.
    pub sim_events: u64,
    /// The deterministic cluster state dump (byte-identical across
    /// same-seed runs — the determinism contract the tests diff).
    pub dump: String,
}

/// Tenant `t`'s client address block: `(20+t).0.0.0/8`. A full /8 per
/// tenant holds 16.7M unique client addresses — enough for the 1M-client
/// nightly configuration.
fn tenant_prefix(t: usize) -> CidrFilter {
    CidrFilter::new(IpAddr::new(20 + t as u8, 0, 0, 0), 8)
}

fn tenant_addr(t: usize, i: usize) -> IpAddr {
    IpAddr::new(20 + t as u8, (i >> 16) as u8, (i >> 8) as u8, i as u8)
}

fn tenant_name(t: usize) -> String {
    format!("tenant-{t}")
}

/// The hosted client world, shared between the frontend (which steps it)
/// and the scenario (which reads its metrics afterwards). The DES is
/// single-threaded, so `Rc<RefCell>` delegation is safe.
struct Hosted(Rc<RefCell<HttpClients>>);

impl simos::World for Hosted {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        self.0.borrow_mut().on_packet(pkt, now, actions);
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        self.0.borrow_mut().on_timer(tag, now, actions);
    }
}

/// Spawns tenant `t`'s server replica on `node`: a per-node container
/// named `tenant-{t}` (created if absent) holding a thread-pool server
/// listening on the tenant's port. Reused for both the initial layout
/// and orchestrator placements.
fn spawn_replica(
    world: &mut World,
    t: usize,
    node: NodeId,
    share: f64,
    params: &ClusterTenantsParams,
) {
    let name = tenant_name(t);
    let k = world.kernel_mut(node);
    if k.containers.find_by_name(&name).is_some() {
        // A drained replica coming back: container and server are still
        // there, only the LB weight was zeroed.
        return;
    }
    let container = k
        .containers
        .create(None, Attributes::fixed_share(share).named(&name))
        .expect("tenant container");
    k.spawn_process(
        Box::new(ThreadPoolServer::new(
            8000 + t as u16,
            params.pool_size,
            params.parse_cost,
            1024,
            false,
            shared_stats(),
        )),
        &format!("{name}-httpd"),
        Some(container),
        Attributes::time_shared(10),
        None,
    );
}

/// Runs the cluster tenant experiment.
pub fn run_cluster_tenants(params: ClusterTenantsParams) -> ClusterTenantsResult {
    run_cluster_tenants_inner(params, None).0
}

/// Runs the cluster tenant experiment with per-node tracing: every node
/// records a full [`rctrace::TraceSession`], returned as `(node name,
/// session)` pairs for [`rctrace::cluster_chrome_trace_json`].
pub fn run_cluster_tenants_traced(
    params: ClusterTenantsParams,
    cfg: rctrace::TraceConfig,
) -> (ClusterTenantsResult, Vec<(String, rctrace::TraceSession)>) {
    run_cluster_tenants_inner(params, Some(cfg))
}

fn run_cluster_tenants_inner(
    params: ClusterTenantsParams,
    trace: Option<rctrace::TraceConfig>,
) -> (ClusterTenantsResult, Vec<(String, rctrace::TraceSession)>) {
    let nt = params.shares.len();
    assert!(nt >= 1, "need at least one tenant");
    assert!(nt <= 200, "tenant address blocks are /8s above 20.0.0.0");
    let nodes = params.nodes.max(1);
    let end = Nanos::from_secs(params.secs.max(4));
    let measure_start = end.saturating_sub(Nanos::from_secs(params.measure_secs.max(1)));
    let epoch = if params.epoch.is_zero() {
        Nanos::from_secs(1)
    } else {
        params.epoch
    };
    let share_sum: f64 = params.shares.iter().sum();
    let configured: Vec<f64> = params.shares.iter().map(|s| s / share_sum).collect();

    // Initial layout: tenant t's servers on nodes 0..k.
    let initial: Vec<usize> = (0..nt)
        .map(|t| {
            params
                .initial_replicas
                .get(t)
                .copied()
                .unwrap_or(usize::MAX)
                .clamp(1, nodes as usize)
        })
        .collect();

    // Backend nodes: identical resource-container kernels. Backends own
    // no foreign prefixes — the frontend owns the whole client space, so
    // every server reply egresses over the lanes back to it.
    let specs: Vec<NodeSpec> = (0..nodes)
        .map(|n| {
            NodeSpec::new(
                format!("node{n}"),
                KernelConfig::resource_containers().with_ncpus(params.ncpus_per_node.max(1)),
            )
        })
        .collect();

    // Closed-loop non-persistent clients, one address block per tenant,
    // start times spread over the first second so the connection storm
    // ramps instead of spiking.
    let mut client_specs = Vec::with_capacity(nt * params.clients_per_tenant);
    for (t, _) in params.shares.iter().enumerate() {
        let n = params.clients_per_tenant.max(1);
        for i in 0..n {
            let start = Nanos::from_micros(10)
                + Nanos::from_nanos((i as u64).wrapping_mul(1_000_000_000) / n as u64);
            let mut s = ClientSpec::staticloop(tenant_addr(t, i), t)
                .with_timeout(params.timeout)
                .with_backoff(params.backoff)
                .starting_at(start);
            s.port = 8000 + t as u16;
            s.think = params.think;
            client_specs.push(s);
        }
    }
    let clients = Rc::new(RefCell::new(HttpClients::new(
        client_specs,
        measure_start,
        end,
    )));

    let routes: Vec<TenantRoute> = (0..nt)
        .map(|t| {
            let replicas = (0..initial[t] as u32)
                .map(|n| (NodeId(n), BASE_WEIGHT))
                .collect();
            TenantRoute::new(tenant_prefix(t), replicas)
        })
        .collect();
    let mut frontend = Frontend::new(Box::new(Hosted(Rc::clone(&clients))), routes);
    clients
        .borrow()
        .arm_with(|tag, at| frontend.arm_world_timer(tag, at));

    let mut world = World::new(specs, frontend, params.lane);
    if let Some(cfg) = trace {
        world.start_tracing(cfg);
    }
    for (t, &replicas) in initial.iter().enumerate() {
        for n in 0..replicas as u32 {
            spawn_replica(&mut world, t, NodeId(n), params.shares[t], &params);
        }
    }

    let mut shares = GlobalShare::new(
        (0..nt)
            .map(|t| TenantShare {
                container: tenant_name(t),
                target: configured[t],
            })
            .collect(),
        params.gain,
    );
    let targets = shares.targets();
    let mut orch = Orchestrator::new(
        OrchestratorConfig::default(),
        (0..nt)
            .map(|t| (0..initial[t] as u32).map(NodeId).collect())
            .collect(),
    );

    let ncpus = params.ncpus_per_node.max(1) as f64;
    let mut prev_busy = vec![Nanos::ZERO; nodes as usize];
    let mut prev_at = Nanos::ZERO;
    let mut window_cpu0: Vec<Nanos> = vec![Nanos::ZERO; nt];
    let mut epoch_split: Vec<Vec<f64>> = Vec::new();
    let mut placements: Vec<(usize, u32)> = Vec::new();
    let mut drains: Vec<(usize, u32)> = Vec::new();

    let mut now = Nanos::ZERO;
    while now < end {
        let next = (now + epoch).min(end).min(if now < measure_start {
            measure_start
        } else {
            end
        });
        world.run(next);
        now = next;

        if now == measure_start {
            // Snapshot the final measurement window's baseline.
            for (t, slot) in window_cpu0.iter_mut().enumerate() {
                *slot = tenant_cpu(&world, t, nodes);
            }
        }

        // Per-node busy fractions over this epoch (the orchestrator's
        // saturation signal).
        let dt = (now - prev_at).as_secs_f64();
        prev_at = now;
        let mut busy = vec![0.0; nodes as usize];
        for (n, b) in busy.iter_mut().enumerate() {
            let s = world.kernel(NodeId(n as u32)).stats();
            let used = s.charged_cpu + s.interrupt_cpu + s.overhead_cpu;
            *b = used.saturating_sub(prev_busy[n]).as_secs_f64() / (dt * ncpus).max(1e-9);
            prev_busy[n] = used;
        }

        if params.rebalance {
            let measured = shares.rebalance(&mut world);
            epoch_split.push(measured.clone());
            for action in orch.tick(&measured, &targets, &busy) {
                match action {
                    Action::Place { tenant, node } => {
                        // Seed with a sliver of the node — the incumbents'
                        // shares may already sum to the headroom cap; the
                        // global balancer renormalizes next epoch.
                        spawn_replica(&mut world, tenant, node, 0.02, &params);
                        world.frontend.set_weight(tenant, node, BASE_WEIGHT);
                        placements.push((tenant, node.0));
                    }
                    Action::Drain { tenant, node } => {
                        world.frontend.set_weight(tenant, node, 0);
                        drains.push((tenant, node.0));
                    }
                }
            }
        } else {
            epoch_split.push(shares.measure(&world));
        }
    }

    let sessions = world.finish_tracing();

    // Final-window global split from container charge deltas.
    let deltas: Vec<Nanos> = (0..nt)
        .map(|t| tenant_cpu(&world, t, nodes).saturating_sub(window_cpu0[t]))
        .collect();
    let total: Nanos = deltas.iter().copied().sum();
    let measured: Vec<f64> = deltas.iter().map(|&d| d.ratio(total)).collect();

    let lane_busy = world.lanes_busy_total();
    let tx_wire = world.tx_total();
    let fs = world.frontend.stats;
    let sim_events: u64 = (0..nodes)
        .map(|n| world.kernel(NodeId(n)).stats().sim_events)
        .sum();
    let metrics = &clients.borrow().metrics;
    let throughputs: Vec<f64> = (0..nt).map(|t| metrics.throughput(t)).collect();

    let result = ClusterTenantsResult {
        nodes,
        clients: nt * params.clients_per_tenant,
        configured,
        measured,
        epoch_split,
        placements,
        drains,
        replicas: (0..nt).map(|t| orch.replicas(t).len()).collect(),
        total_throughput: throughputs.iter().sum(),
        throughputs,
        lane_busy_ns: lane_busy.as_nanos(),
        tx_wire_ns: tx_wire.as_nanos(),
        conserved: lane_busy == tx_wire,
        forwarded: fs.forwarded,
        assigned: fs.assigned,
        unroutable: fs.unroutable,
        sim_events,
        dump: world.dump(),
    };
    (result, sessions)
}

/// A tenant's total subtree CPU charge summed across every node.
fn tenant_cpu(world: &World, t: usize, nodes: u32) -> Nanos {
    let name = tenant_name(t);
    (0..nodes)
        .map(|n| {
            let k = world.kernel(NodeId(n));
            k.containers
                .find_by_name(&name)
                .and_then(|id| k.containers.subtree_cpu(id).ok())
                .unwrap_or(Nanos::ZERO)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ClusterTenantsParams {
        ClusterTenantsParams {
            clients_per_tenant: 48,
            secs: 12,
            measure_secs: 3,
            ..ClusterTenantsParams::reduced()
        }
    }

    #[test]
    fn orchestrator_and_shares_hold_global_split() {
        let r = run_cluster_tenants(ClusterTenantsParams::reduced());
        assert!(r.conserved, "wire accounting must conserve");
        assert!(
            !r.placements.is_empty(),
            "bronze starts capacity-confined; the orchestrator must place"
        );
        for (c, m) in r.configured.iter().zip(&r.measured) {
            assert!(
                (c - m).abs() <= 0.02,
                "configured {c} vs measured {m} (split {:?}, placements {:?})",
                r.measured,
                r.placements
            );
        }
    }

    #[test]
    fn without_rebalance_the_split_drifts() {
        let r = run_cluster_tenants(ClusterTenantsParams {
            rebalance: false,
            ..ClusterTenantsParams::reduced()
        });
        assert!(r.placements.is_empty() && r.drains.is_empty());
        // Gold owns six extra nodes outright: far above its 0.7 target.
        assert!(
            r.measured[0] > 0.80,
            "expected drift without rebalance, got {:?}",
            r.measured
        );
    }

    #[test]
    fn same_seed_clusters_dump_identically() {
        let a = run_cluster_tenants(tiny());
        let b = run_cluster_tenants(tiny());
        assert_eq!(a.dump, b.dump);
        assert!(!a.dump.is_empty());
    }
}
