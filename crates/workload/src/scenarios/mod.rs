//! One self-contained driver per experiment in the paper's §5.
//!
//! Every driver builds a kernel + server + client world, runs it for a
//! warmup period and a measurement window, and returns a structured
//! result. The `rcbench` binaries print these as the paper's tables and
//! figures; the workspace integration tests assert the qualitative shapes
//! at reduced scale.

pub mod baseline;
pub mod cluster_tenants;
pub mod disk_tenants;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod memhog_tenants;
pub mod qos_tenants;
pub mod smp_tenants;
pub mod span_tenants;
pub mod synflood_fault;
pub mod virtual_servers;

pub use baseline::{run_baseline, BaselineParams, BaselineResult};
pub use cluster_tenants::{
    run_cluster_tenants, run_cluster_tenants_traced, ClusterTenantsParams, ClusterTenantsResult,
};
pub use disk_tenants::{run_disk_tenants, DiskTenantsParams, DiskTenantsResult};
pub use fig11::{run_fig11, Fig11Params, Fig11Result, Fig11System};
pub use fig12::{run_fig12, Fig12Params, Fig12Result, Fig12System};
pub use fig14::{run_fig14, Fig14Params, Fig14Result};
pub use memhog_tenants::{
    run_memhog_tenants, HogSnapshot, MemCounters, MemhogTenantsParams, MemhogTenantsResult,
    TenantSnapshot,
};
pub use qos_tenants::{run_qos_tenants, QosTenantsParams, QosTenantsResult};
pub use smp_tenants::{run_smp_tenants, SmpTenantsParams, SmpTenantsResult};
pub use span_tenants::{run_span_tenants, SpanTenantsParams, SpanTenantsResult, TENANT_NAMES};
pub use synflood_fault::{run_synflood_fault, SynfloodFaultParams, SynfloodFaultResult};
pub use virtual_servers::{run_virtual_servers, VsParams, VsResult};
