//! Link-bandwidth isolation between tenants (§4.1 `NetQos`, §7).
//!
//! The paper's §4.1 attaches network QoS attributes (a transmit weight
//! and a socket-buffer limit) to resource containers; §7 argues the
//! container abstraction covers "other system resources" beyond CPU.
//! This experiment demonstrates it on the simulated transmit link: two
//! tenants share a finite-bandwidth NIC — a *gold* tenant with transmit
//! weight 3 and a well-behaved socket-buffer limit, and a *blast* tenant
//! with weight 1, no socket-buffer limit, and three times as many
//! clients — and we measure how the wire time divides between them.
//!
//! Under the FIFO qdisc (the "unmodified kernel" ablation) packets go
//! out in arrival order, so the split tracks offered load: the blast
//! tenant's firehose of queued responses crowds the gold tenant off the
//! link. Under the hierarchical weighted-fair qdisc the split tracks the
//! configured 3:1 weights (~75/25) regardless of the blast tenant's
//! offered load, and the gold tenant's throughput stays flat.

use httpsim::stats::shared_stats;
use httpsim::{EventDrivenServer, FileBacking, ServerConfig};
use rescon::{Attributes, ContainerId};
use simcore::Nanos;
use simos::{Kernel, KernelConfig, QdiscKind};

use crate::clients::{ClientSpec, HttpClients};
use crate::scenarios::disk_tenants::{tenant_addr, TenantWorld, TENANT_SHIFT};

/// Parameters of the two-tenant link-bandwidth experiment.
#[derive(Clone, Debug)]
pub struct QosTenantsParams {
    /// Transmit weights of (gold, blast) — the paper's §4.1 `NetQos`.
    pub weights: (u32, u32),
    /// Closed-loop clients driving the gold tenant.
    pub gold_clients: usize,
    /// Closed-loop clients driving the blast tenant (the swept variable).
    pub blast_clients: usize,
    /// Static response size in KiB (large enough that the link, not the
    /// CPU, is the bottleneck).
    pub response_kib: u64,
    /// Link bandwidth in Mbit/s.
    pub link_mbps: u64,
    /// Socket-buffer limit of the gold tenant in KiB (`None` = unlimited).
    /// The blast tenant never has one — it queues as fast as its clients
    /// complete, which is exactly the overload FIFO cannot contain.
    pub gold_sockbuf_kib: Option<u64>,
    /// Transmit qdisc under test.
    pub qdisc: QdiscKind,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for QosTenantsParams {
    fn default() -> Self {
        QosTenantsParams {
            weights: (3, 1),
            gold_clients: 6,
            blast_clients: 18,
            response_kib: 32,
            link_mbps: 80,
            gold_sockbuf_kib: Some(64),
            qdisc: QdiscKind::Wfq,
            secs: 8,
        }
    }
}

/// Result of the two-tenant link-bandwidth experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct QosTenantsResult {
    /// Qdisc name ("fifo" or "wfq").
    pub qdisc: String,
    /// Configured weights, normalized: [gold, blast].
    pub configured: Vec<f64>,
    /// Measured fraction of charged wire time: [gold, blast].
    pub tx_fractions: Vec<f64>,
    /// Link utilization over the measurement window (busy / wall).
    pub utilization: f64,
    /// Windowed response throughput per tenant: [gold, blast].
    pub throughputs: Vec<f64>,
    /// Mean response time per tenant in ms: [gold, blast].
    pub latencies_ms: Vec<f64>,
    /// Kernel events processed, for the simulator self-benchmark.
    pub sim_events: u64,
}

/// Runs the two-tenant link experiment and reports the wire-time split.
pub fn run_qos_tenants(params: QosTenantsParams) -> QosTenantsResult {
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(2).min(end / 4);

    let cfg =
        KernelConfig::resource_containers().with_link(params.link_mbps * 1_000_000, params.qdisc);
    let mut k = Kernel::new(cfg);

    let weights = [params.weights.0.max(1), params.weights.1.max(1)];
    let tenants: Vec<ContainerId> = weights
        .iter()
        .enumerate()
        .map(|(g, &w)| {
            let mut attrs = Attributes::fixed_share(0.5)
                .named(if g == 0 { "gold" } else { "blast" })
                .with_net_weight(w);
            if g == 0 {
                if let Some(kib) = params.gold_sockbuf_kib {
                    attrs = attrs.with_sockbuf_limit(kib * 1024);
                }
            }
            k.containers.create(None, attrs).expect("tenant container")
        })
        .collect();

    // One in-memory server per tenant; connections share the tenant's
    // (process-default) container, so each tenant is one principal at the
    // link and the weight resolves over the hierarchy (root → tenant →
    // server default).
    for (g, &tenant) in tenants.iter().enumerate() {
        let cfg = ServerConfig {
            port: 8000 + g as u16,
            conn_parent: Some(tenant),
            container_per_connection: false,
            response_bytes: params.response_kib * 1024,
            files: FileBacking::AlwaysCached,
            ..ServerConfig::default()
        };
        k.spawn_process(
            Box::new(EventDrivenServer::new(cfg, shared_stats())),
            &format!("tenant-httpd-{g}"),
            Some(tenant),
            Attributes::time_shared(10),
            None,
        );
    }

    let mut world = TenantWorld {
        tenants: Vec::new(),
    };
    let n_clients = [params.gold_clients, params.blast_clients];
    for (g, &n) in n_clients.iter().enumerate() {
        let specs: Vec<ClientSpec> = (0..n)
            .map(|i| {
                let mut s = ClientSpec::staticloop(tenant_addr(g, i), 0)
                    .starting_at(Nanos::from_micros(10 + 7 * i as u64));
                s.port = 8000 + g as u16;
                s
            })
            .collect();
        let clients = HttpClients::new(specs, warmup, end);
        for i in 0..clients.len() {
            k.arm_world_timer(
                ((g as u64) << TENANT_SHIFT) | (i as u64 * 4),
                Nanos::from_micros(10 + 7 * i as u64),
            );
        }
        world.tenants.push(clients);
    }

    // Warmup, snapshot per-tenant wire time, measure.
    k.run(&mut world, warmup);
    let tx0: Vec<Nanos> = tenants.iter().map(|&t| k.subtree_tx_of(t)).collect();
    let busy0 = k.link_totals().0;
    k.run(&mut world, end);
    let deltas: Vec<Nanos> = tenants
        .iter()
        .zip(&tx0)
        .map(|(&t, &d0)| k.subtree_tx_of(t) - d0)
        .collect();
    let total: Nanos = deltas.iter().copied().sum();
    let busy = k.link_totals().0 - busy0;

    let weight_sum: u32 = weights.iter().sum();
    QosTenantsResult {
        qdisc: match params.qdisc {
            QdiscKind::Fifo => "fifo".to_string(),
            QdiscKind::Wfq => "wfq".to_string(),
        },
        configured: weights
            .iter()
            .map(|&w| w as f64 / weight_sum as f64)
            .collect(),
        tx_fractions: deltas.iter().map(|&d| d.ratio(total)).collect(),
        utilization: busy.ratio(end - warmup),
        throughputs: (0..tenants.len())
            .map(|g| world.tenants[g].metrics.throughput(0))
            .collect(),
        latencies_ms: (0..tenants.len())
            .map(|g| world.tenants[g].metrics.mean_latency_ms(0))
            .collect(),
        sim_events: k.stats().sim_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(qdisc: QdiscKind, blast_clients: usize) -> QosTenantsResult {
        run_qos_tenants(QosTenantsParams {
            qdisc,
            blast_clients,
            secs: 6,
            ..QosTenantsParams::default()
        })
    }

    #[test]
    fn wfq_splits_link_by_weight() {
        let r = quick(QdiscKind::Wfq, 18);
        assert!(r.utilization > 0.9, "link not saturated: {r:?}");
        for (c, m) in r.configured.iter().zip(&r.tx_fractions) {
            assert!(
                (c - m).abs() < 0.05,
                "configured {c} vs measured {m}: {r:?}"
            );
        }
    }

    #[test]
    fn gold_flat_under_wfq_collapses_under_fifo() {
        // FIFO transmits in arrival order, so the blast tenant's
        // unthrottled queue crowds out the gold tenant; WFQ pins the gold
        // tenant to its 75% weight share regardless of the blast load.
        let wfq = quick(QdiscKind::Wfq, 18);
        let fifo = quick(QdiscKind::Fifo, 18);
        assert!(
            fifo.tx_fractions[0] < 0.45,
            "gold kept its share under fifo: {fifo:?}"
        );
        assert!(
            wfq.throughputs[0] > 1.5 * fifo.throughputs[0],
            "wfq does not protect the gold tenant: wfq {wfq:?} vs fifo {fifo:?}"
        );
    }
}
