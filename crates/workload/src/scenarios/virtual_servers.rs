//! §5.8: isolation of virtual servers (the Rent-A-Server experiment).
//!
//! "We created 3 top-level containers and restricted their CPU consumption
//! to fixed CPU shares. Each container was then used as the root container
//! for a guest server. Subsequently, three sets of clients placed varying
//! request loads on these servers; the requests included CGI resources. We
//! observed that the total CPU time consumed by each guest server exactly
//! matched its allocation."

use httpsim::event_driven::CgiSandbox;
use httpsim::stats::shared_stats;
use httpsim::{EventDrivenServer, ReqKind, ServerConfig};
use rescon::{Attributes, ContainerId};
use simcore::Nanos;
use simnet::{IpAddr, Packet};
use simos::{Kernel, KernelConfig, World, WorldAction};

use crate::clients::{ClientSpec, HttpClients};

/// Parameters of the virtual-server experiment.
#[derive(Clone, Debug)]
pub struct VsParams {
    /// Fixed CPU share of each guest (must sum to at most 1).
    pub shares: Vec<f64>,
    /// Closed-loop static clients per guest (varying loads are fine; every
    /// guest should be able to saturate its share).
    pub clients_per_guest: Vec<usize>,
    /// Add CGI load inside each guest ("the requests included CGI
    /// resources"), with this CPU burn (None = static only).
    pub cgi_cpu: Option<Nanos>,
    /// Simulated run length.
    pub secs: u64,
}

impl Default for VsParams {
    fn default() -> Self {
        VsParams {
            shares: vec![0.5, 0.3, 0.2],
            clients_per_guest: vec![16, 16, 16],
            cgi_cpu: Some(Nanos::from_millis(500)),
            secs: 20,
        }
    }
}

/// Result of the virtual-server experiment.
#[derive(Clone, Debug, serde::Serialize)]
pub struct VsResult {
    /// Configured shares (normalized).
    pub configured: Vec<f64>,
    /// Measured fraction of total guest CPU consumed by each guest.
    pub measured: Vec<f64>,
    /// Static throughput per guest.
    pub throughputs: Vec<f64>,
}

/// A world of per-guest client sets, routed by guest address block.
struct GuestWorld {
    guests: Vec<HttpClients>,
}

/// Tag block per guest.
const GUEST_SHIFT: u32 = 32;

impl World for GuestWorld {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        // Guest `g` clients live in 10.{100+g}.x.x.
        let (_, b, _, _) = pkt.flow.src.octets();
        let g = (b as usize).saturating_sub(100);
        if let Some(c) = self.guests.get_mut(g) {
            let mut local = Vec::new();
            c.on_packet(pkt, now, &mut local);
            relabel(&mut local, g);
            actions.extend(local);
        }
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        let g = (tag >> GUEST_SHIFT) as usize;
        if let Some(c) = self.guests.get_mut(g) {
            let mut local = Vec::new();
            c.on_timer(tag & ((1 << GUEST_SHIFT) - 1), now, &mut local);
            relabel(&mut local, g);
            actions.extend(local);
        }
    }
}

fn relabel(actions: &mut [WorldAction], g: usize) {
    for a in actions.iter_mut() {
        if let WorldAction::SetTimer { tag, .. } = a {
            *tag |= (g as u64) << GUEST_SHIFT;
        }
    }
}

/// Address of client `i` of guest `g`.
pub fn guest_addr(g: usize, i: usize) -> IpAddr {
    IpAddr::new(10, 100 + g as u8, (i / 250) as u8, (i % 250) as u8 + 1)
}

/// Runs the virtual-server isolation experiment on the RC kernel.
pub fn run_virtual_servers(params: VsParams) -> VsResult {
    assert_eq!(params.shares.len(), params.clients_per_guest.len());
    let n = params.shares.len();
    let secs = params.secs.max(4);
    let end = Nanos::from_secs(secs);
    let warmup = Nanos::from_secs(2).min(end / 4);

    let mut k = Kernel::new(KernelConfig::resource_containers());

    // The three top-level guest containers with fixed shares.
    let guests: Vec<ContainerId> = params
        .shares
        .iter()
        .enumerate()
        .map(|(g, &share)| {
            k.containers
                .create(
                    None,
                    Attributes::fixed_share(share).named(&format!("guest-{g}")),
                )
                .expect("guest container")
        })
        .collect();

    // One server per guest, on its own port, entirely inside its guest
    // container (process, connections, classes, CGI sandbox).
    for (g, &guest) in guests.iter().enumerate() {
        let stats = shared_stats();
        let cfg = ServerConfig {
            port: 8000 + g as u16,
            conn_parent: Some(guest),
            cgi_sandbox: params.cgi_cpu.map(|_| CgiSandbox {
                share: 0.5,
                limit: 0.5,
                window: Nanos::from_millis(200),
            }),
            cgi_cpu: params.cgi_cpu.unwrap_or(Nanos::from_secs(2)),
            ..ServerConfig::default()
        };
        k.spawn_process(
            Box::new(EventDrivenServer::new(cfg, stats)),
            &format!("guest-httpd-{g}"),
            Some(guest),
            Attributes::time_shared(10),
            None,
        );
    }

    // Client sets, one per guest; a sprinkling of CGI clients when asked.
    let mut world = GuestWorld { guests: Vec::new() };
    for g in 0..n {
        let mut specs: Vec<ClientSpec> = (0..params.clients_per_guest[g])
            .map(|i| {
                let mut s = ClientSpec::staticloop(guest_addr(g, i), 0)
                    .starting_at(Nanos::from_micros(10 + 7 * i as u64));
                s.port = 8000 + g as u16;
                s
            })
            .collect();
        if params.cgi_cpu.is_some() {
            let i = params.clients_per_guest[g];
            let mut s = ClientSpec::staticloop(guest_addr(g, i), 1)
                .with_kind(ReqKind::Cgi)
                .starting_at(Nanos::from_millis(1));
            s.port = 8000 + g as u16;
            specs.push(s);
        }
        let clients = HttpClients::new(specs, warmup, end);
        for (i, _) in (0..clients.len()).enumerate() {
            k.arm_world_timer(
                ((g as u64) << GUEST_SHIFT) | (i as u64 * 4),
                Nanos::from_micros(10 + 7 * i as u64),
            );
        }
        world.guests.push(clients);
    }

    // Warmup, snapshot per-guest CPU, measure.
    k.run(&mut world, warmup);
    let cpu0: Vec<Nanos> = guests
        .iter()
        .map(|&g| k.containers.subtree_cpu(g).unwrap())
        .collect();
    k.run(&mut world, end);
    let deltas: Vec<Nanos> = guests
        .iter()
        .zip(&cpu0)
        .map(|(&g, &c0)| k.containers.subtree_cpu(g).unwrap() - c0)
        .collect();
    let total: Nanos = deltas.iter().copied().sum();

    let share_sum: f64 = params.shares.iter().sum();
    VsResult {
        configured: params.shares.iter().map(|s| s / share_sum).collect(),
        measured: deltas.iter().map(|&d| d.ratio(total)).collect(),
        throughputs: (0..n)
            .map(|g| world.guests[g].metrics.throughput(0))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guest_cpu_matches_allocation() {
        let r = run_virtual_servers(VsParams {
            shares: vec![0.5, 0.3, 0.2],
            clients_per_guest: vec![10, 10, 10],
            cgi_cpu: None,
            secs: 8,
        });
        for (c, m) in r.configured.iter().zip(&r.measured) {
            assert!(
                (c - m).abs() < 0.04,
                "configured {c} vs measured {m} ({:?})",
                r.measured
            );
        }
        // Throughputs scale with shares.
        assert!(r.throughputs[0] > r.throughputs[1]);
        assert!(r.throughputs[1] > r.throughputs[2]);
    }

    #[test]
    fn isolation_holds_with_cgi_load() {
        let r = run_virtual_servers(VsParams {
            shares: vec![0.6, 0.4],
            clients_per_guest: vec![10, 10],
            cgi_cpu: Some(Nanos::from_millis(100)),
            secs: 8,
        });
        for (c, m) in r.configured.iter().zip(&r.measured) {
            assert!(
                (c - m).abs() < 0.05,
                "configured {c} vs measured {m} ({:?})",
                r.measured
            );
        }
    }
}
