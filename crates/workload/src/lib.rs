//! Client worlds and experiment scenarios.
//!
//! The `workload` crate provides everything outside the simulated server
//! machine:
//!
//! - [`clients`]: configurable closed-loop HTTP clients with per-class
//!   latency metrics, persistent-connection support, and S-Client-style
//!   abandon-and-retry behaviour (Banga & Druschel '97) so that offered
//!   load is sustained even when the server drops SYNs.
//! - [`synflood`]: an open-loop SYN generator cycling through a source
//!   address block — the "malicious clients" of §5.7.
//! - [`composite`]: combine several worlds behind one kernel, routing
//!   packets by source address and partitioning the timer tag space.
//! - [`metrics`]: per-class latency summaries and throughput counters.
//! - [`scenarios`]: one self-contained driver per experiment in the
//!   paper's evaluation — §5.3 baseline throughput, Figure 11 prioritized
//!   clients, Figures 12/13 CGI control, Figure 14 SYN-flood immunity, and
//!   the §5.8 virtual-server isolation experiment — each returning a
//!   structured result the benches print and the integration tests assert
//!   against.
//! - [`registry`]: the named-scenario table behind the unified `rcbench`
//!   CLI — uniform arguments, structured outcomes, and per-run
//!   self-checks.

pub mod clients;
pub mod composite;
pub mod metrics;
pub mod registry;
pub mod scenarios;
pub mod synflood;

pub use clients::{ClientSpec, HttpClients};
pub use composite::CompositeWorld;
pub use metrics::ClientMetrics;
pub use registry::{Check, Outcome, ScenarioArgs, ScenarioRegistry, ScenarioSpec};
pub use synflood::SynFlood;
