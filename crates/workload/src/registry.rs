//! The scenario registry: one table of named, uniformly-invokable
//! experiment drivers behind the `rcbench` CLI.
//!
//! Each [`ScenarioSpec`] couples a name with a runner that builds the
//! scenario's parameters from generic [`ScenarioArgs`], runs it (tracing
//! where the experiment's artifacts need a trace), and returns a
//! structured [`Outcome`]: headline lines to print, trace sessions to
//! export, self-[`Check`]s for CI gates, and (for the cluster scenario)
//! the determinism dump CI byte-diffs. The CLI layer owns everything
//! filesystem- and JSON-shaped — artifact validation, writing, exit
//! codes — so the registry stays a pure scenario table.

use rctrace::TraceConfig;
use simcore::Nanos;
use simos::{DiskSchedKind, QdiscKind};

use crate::scenarios::{
    run_cluster_tenants_traced, run_disk_tenants, run_memhog_tenants, run_qos_tenants,
    run_smp_tenants, run_synflood_fault, ClusterTenantsParams, ClusterTenantsResult,
    DiskTenantsParams, DiskTenantsResult, MemhogTenantsParams, QosTenantsParams, SmpTenantsParams,
    SynfloodFaultParams,
};

/// Generic arguments a scenario runner may consult. Unset options fall
/// back to each scenario's documented default.
#[derive(Clone, Debug, Default)]
pub struct ScenarioArgs {
    /// Shrink the run for CI smoke tests.
    pub reduced: bool,
    /// CPU count (smp).
    pub ncpus: Option<u32>,
    /// Fault-plan seed (fault).
    pub seed: Option<u64>,
    /// Clients per tenant (cluster; the 1M-client nightly sets 500000).
    pub clients: Option<usize>,
    /// Backend node count (cluster).
    pub nodes: Option<u32>,
}

/// One self-check a scenario evaluates on its own run. The CLI enforces
/// these under `--check`; they are always computed (they're cheap).
#[derive(Clone, Debug)]
pub struct Check {
    /// Short name of the property.
    pub label: &'static str,
    /// Whether the run satisfied it.
    pub ok: bool,
    /// Human-readable detail (the failure message when `!ok`).
    pub detail: String,
}

impl Check {
    fn new(label: &'static str, ok: bool, detail: String) -> Self {
        Check { label, ok, detail }
    }
}

/// What a scenario run produced, for the CLI to print and persist.
#[derive(Default)]
pub struct Outcome {
    /// Headline lines, printed in order.
    pub headline: Vec<String>,
    /// Self-checks (enforced under `--check`).
    pub checks: Vec<Check>,
    /// Message printed when every check passes.
    pub check_ok: &'static str,
    /// Single-kernel trace session to export (chrome + metrics).
    pub session: Option<rctrace::TraceSession>,
    /// Per-node `(name, session)` pairs from a cluster run, exported as
    /// one merged Chrome trace with per-node track groups.
    pub cluster_sessions: Vec<(String, rctrace::TraceSession)>,
    /// Full cluster result (JSON artifact + the determinism dump CI
    /// byte-diffs).
    pub cluster: Option<ClusterTenantsResult>,
    /// Text-report lines (`""` = blank): written as `results/<name>.txt`
    /// under the given `(name, title)` in addition to being printed.
    pub report: Option<(String, String, Vec<String>)>,
}

/// A named scenario: metadata plus its runner.
pub struct ScenarioSpec {
    /// Subcommand name.
    pub name: &'static str,
    /// One-line description for `rcbench help`.
    pub about: &'static str,
    /// Substrings the Chrome trace artifact must contain (validated by
    /// the CLI before writing; empty when the scenario emits no trace).
    pub trace_markers: &'static [&'static str],
    /// Substrings the metrics dump must contain.
    pub metrics_markers: &'static [&'static str],
    /// Default artifact basename for `--out`.
    pub default_out: fn(&ScenarioArgs) -> String,
    /// Runs the scenario.
    pub run: fn(&ScenarioArgs) -> Result<Outcome, String>,
}

/// The table of registered scenarios.
pub struct ScenarioRegistry {
    specs: Vec<ScenarioSpec>,
}

impl ScenarioRegistry {
    /// The standard registry behind `rcbench <subcommand>`.
    pub fn standard() -> Self {
        ScenarioRegistry {
            specs: vec![
                ScenarioSpec {
                    name: "disk",
                    about: "disk-bandwidth isolation: 70/30 fixed-share tenants vs FIFO",
                    trace_markers: &[],
                    metrics_markers: &[],
                    default_out: |_| "fig_disk".to_string(),
                    run: run_disk,
                },
                ScenarioSpec {
                    name: "smp",
                    about: "multiprocessor tenant shares with migration (traced)",
                    trace_markers: &[],
                    metrics_markers: &[],
                    default_out: |a| format!("smp_ncpus{}", a.ncpus.unwrap_or(4)),
                    run: run_smp,
                },
                ScenarioSpec {
                    name: "qos",
                    about: "link QoS: WFQ qdisc vs FIFO under a blast tenant (traced)",
                    trace_markers: &["\"link\""],
                    metrics_markers: &["\"link\""],
                    default_out: |_| "qos".to_string(),
                    run: run_qos,
                },
                ScenarioSpec {
                    name: "fault",
                    about: "SYN flood + seeded fault injection on the defended kernel (traced)",
                    trace_markers: &["\"fault\""],
                    metrics_markers: &[],
                    default_out: |_| "fault".to_string(),
                    run: run_fault,
                },
                ScenarioSpec {
                    name: "mem",
                    about: "memory isolation: cache hog vs guaranteed tenant (traced)",
                    trace_markers: &["mem_bytes"],
                    metrics_markers: &["\"mem\""],
                    default_out: |_| "mem".to_string(),
                    run: run_mem,
                },
                ScenarioSpec {
                    name: "cluster",
                    about: "cluster scale-out: global 70/30 split across 8 nodes (traced)",
                    trace_markers: &["node0 cpu"],
                    metrics_markers: &[],
                    default_out: |_| "cluster".to_string(),
                    run: run_cluster,
                },
            ],
        }
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// All registered specs, in listing order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioSpec> {
        self.specs.iter()
    }

    /// Registered names, for help/error text.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }
}

fn run_disk(args: &ScenarioArgs) -> Result<Outcome, String> {
    let secs = if args.reduced { 6 } else { 12 };
    let run = |sched: DiskSchedKind, hog_clients: usize| -> DiskTenantsResult {
        run_disk_tenants(DiskTenantsParams {
            hog_clients,
            secs,
            sched,
            ..DiskTenantsParams::default()
        })
    };

    let mut lines: Vec<String> = Vec::new();
    lines.push("disk-time split at 8 hog clients:".to_string());
    lines.push(format!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "sched", "hog conf", "hog meas", "victim conf", "victim meas", "disk%"
    ));
    let mut share_at_8 = None;
    for sched in [DiskSchedKind::Fifo, DiskSchedKind::Share] {
        let r = run(sched, 8);
        lines.push(format!(
            "{:<8} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}% {:>7.1}%",
            r.sched,
            r.configured[0] * 100.0,
            r.disk_fractions[0] * 100.0,
            r.configured[1] * 100.0,
            r.disk_fractions[1] * 100.0,
            r.utilization * 100.0,
        ));
        if sched == DiskSchedKind::Share {
            share_at_8 = Some(r);
        }
    }
    lines.push(String::new());

    lines.push("victim throughput vs hog load:".to_string());
    lines.push(format!(
        "{:<14} {:>10} {:>16} {:>16}",
        "hog clients", "sched", "victim req/s", "victim ms"
    ));
    let hog_loads: &[usize] = if args.reduced {
        &[2, 8]
    } else {
        &[2, 4, 8, 16]
    };
    let mut victim_share: Vec<f64> = Vec::new();
    for &hogs in hog_loads {
        for sched in [DiskSchedKind::Fifo, DiskSchedKind::Share] {
            let r = run(sched, hogs);
            lines.push(format!(
                "{:<14} {:>10} {:>16.1} {:>16.1}",
                hogs, r.sched, r.throughputs[1], r.latencies_ms[1]
            ));
            if sched == DiskSchedKind::Share {
                victim_share.push(r.throughputs[1]);
            }
        }
    }
    lines.push(String::new());
    lines.push("paper §7: \"the container mechanism is general enough to encompass".to_string());
    lines.push("other system resources, such as disk bandwidth\"; the share-aware".to_string());
    lines.push("I/O scheduler holds the victim's service flat under any hog load.".to_string());

    let share_at_8 = share_at_8.expect("Share arm ran");
    let mut checks = Vec::new();
    for (c, m) in share_at_8.configured.iter().zip(&share_at_8.disk_fractions) {
        checks.push(Check::new(
            "share-split",
            (c - m).abs() < 0.10,
            format!(
                "share scheduler: configured {:.0}% vs measured {:.1}%",
                c * 100.0,
                m * 100.0
            ),
        ));
    }
    let flat = victim_share.last().copied().unwrap_or(0.0)
        >= 0.8 * victim_share.first().copied().unwrap_or(0.0);
    checks.push(Check::new(
        "victim-flat",
        flat,
        format!(
            "share-scheduled victim throughput {:.1} req/s at max hog load vs {:.1} at min",
            victim_share.last().copied().unwrap_or(0.0),
            victim_share.first().copied().unwrap_or(0.0)
        ),
    ));

    Ok(Outcome {
        checks,
        check_ok: "share scheduler holds the 70/30 split and the victim stays flat",
        report: Some((
            "fig_disk".to_string(),
            "disk-bandwidth isolation: 70/30 fixed-share tenants".to_string(),
            lines,
        )),
        ..Outcome::default()
    })
}

fn run_smp(args: &ScenarioArgs) -> Result<Outcome, String> {
    let ncpus = args.ncpus.unwrap_or(4);
    let params = SmpTenantsParams {
        ncpus,
        clients_per_tenant: if args.reduced { 16 } else { 24 },
        parse_cost: Nanos::from_micros(200),
        secs: if args.reduced { 4 } else { 10 },
        ..SmpTenantsParams::default()
    };

    rctrace::start(TraceConfig::default());
    let r = run_smp_tenants(params);
    let session = rctrace::finish().ok_or("no trace session captured")?;

    let headline = vec![format!(
        "smp_tenants ncpus={}: shares {} | {:.0} req/s total | {} migrations | busy {}",
        r.ncpus,
        r.configured
            .iter()
            .zip(&r.measured)
            .map(|(c, m)| format!("{:.0}%->{:.1}%", c * 100.0, m * 100.0))
            .collect::<Vec<_>>()
            .join(" "),
        r.total_throughput,
        r.migrations,
        r.busy_fraction
            .iter()
            .map(|b| format!("{:.0}%", b * 100.0))
            .collect::<Vec<_>>()
            .join("/"),
    )];

    let mut checks = Vec::new();
    for (c, m) in r.configured.iter().zip(&r.measured) {
        checks.push(Check::new(
            "share",
            (c - m).abs() < 0.05,
            format!(
                "configured {:.0}% but measured {:.1}%",
                c * 100.0,
                m * 100.0
            ),
        ));
    }
    checks.push(Check::new(
        "migrations",
        if ncpus > 1 {
            r.migrations > 0
        } else {
            r.migrations == 0
        },
        if ncpus > 1 {
            "balancer never migrated a thread".to_string()
        } else {
            format!("uniprocessor run migrated {} threads", r.migrations)
        },
    ));

    Ok(Outcome {
        headline,
        checks,
        check_ok: "every tenant within 5 points of its share",
        session: Some(session),
        ..Outcome::default()
    })
}

fn run_qos(args: &ScenarioArgs) -> Result<Outcome, String> {
    let params = QosTenantsParams {
        blast_clients: if args.reduced { 18 } else { 24 },
        secs: if args.reduced { 6 } else { 10 },
        ..QosTenantsParams::default()
    };

    // The FIFO ablation first (untraced), then the WFQ run under tracing.
    let fifo = run_qos_tenants(QosTenantsParams {
        qdisc: QdiscKind::Fifo,
        ..params.clone()
    });
    rctrace::start(TraceConfig::default());
    let wfq = run_qos_tenants(params);
    let session = rctrace::finish().ok_or("no trace session captured")?;

    let headline = vec![format!(
        "qos_tenants: wfq gold/blast {:.1}%/{:.1}% of wire time (configured \
         {:.0}%/{:.0}%) at {:.0}% utilization | fifo gold/blast {:.1}%/{:.1}% | \
         gold throughput {:.0} req/s under wfq vs {:.0} under fifo",
        wfq.tx_fractions[0] * 100.0,
        wfq.tx_fractions[1] * 100.0,
        wfq.configured[0] * 100.0,
        wfq.configured[1] * 100.0,
        wfq.utilization * 100.0,
        fifo.tx_fractions[0] * 100.0,
        fifo.tx_fractions[1] * 100.0,
        wfq.throughputs[0],
        fifo.throughputs[0],
    )];

    let mut checks = vec![Check::new(
        "saturation",
        wfq.utilization >= 0.9,
        format!("link only {:.0}% utilized", wfq.utilization * 100.0),
    )];
    for (c, m) in wfq.configured.iter().zip(&wfq.tx_fractions) {
        checks.push(Check::new(
            "share",
            (c - m).abs() < 0.05,
            format!(
                "configured {:.0}% vs measured {:.1}% under wfq",
                c * 100.0,
                m * 100.0
            ),
        ));
    }
    checks.push(Check::new(
        "ablation",
        fifo.tx_fractions[0] < 0.45,
        format!(
            "fifo still gave the gold tenant {:.1}%",
            fifo.tx_fractions[0] * 100.0
        ),
    ));
    checks.push(Check::new(
        "protection",
        wfq.throughputs[0] > 1.5 * fifo.throughputs[0],
        format!(
            "gold {:.0} req/s under wfq vs {:.0} under fifo",
            wfq.throughputs[0], fifo.throughputs[0]
        ),
    ));

    Ok(Outcome {
        headline,
        checks,
        check_ok: "wfq holds the 3:1 split; fifo collapses under the blast tenant",
        session: Some(session),
        ..Outcome::default()
    })
}

fn run_fault(args: &ScenarioArgs) -> Result<Outcome, String> {
    let params = SynfloodFaultParams {
        clients: if args.reduced { 8 } else { 12 },
        fault_seed: args.seed.unwrap_or(7),
        ..SynfloodFaultParams::default()
    };

    // The fault-free, flood-free baseline first (untraced), then the
    // faulted run under tracing.
    let base = run_synflood_fault(params.baseline());
    rctrace::start(TraceConfig::default());
    let r = run_synflood_fault(params.clone());
    let session = rctrace::finish().ok_or("no trace session captured")?;

    let headline = vec![format!(
        "synflood_fault ncpus={} seed={}: {:.0} req/s (baseline {:.0}) | p99 {:.2} ms \
         (baseline {:.2}) | {} net + {} client faults | {} syns, {} early drops, \
         attacker pays {:.1}% | {} isolations",
        params.ncpus,
        params.fault_seed,
        r.throughput,
        base.throughput,
        r.p99_ms,
        base.p99_ms,
        r.net_faults,
        r.client_faults,
        r.syns_sent,
        r.early_drops,
        r.attacker_drop_share * 100.0,
        r.isolations,
    )];

    let checks = vec![
        Check::new(
            "degradation",
            r.throughput >= 0.9 * base.throughput,
            format!(
                "{:.0} req/s under faults vs {:.0} baseline",
                r.throughput, base.throughput
            ),
        ),
        Check::new(
            "latency",
            r.p99_ms <= 2.0 * base.p99_ms.max(0.5),
            format!("p99 {:.2} ms vs baseline {:.2} ms", r.p99_ms, base.p99_ms),
        ),
        Check::new(
            "charging",
            r.attacker_drop_share >= 0.95,
            format!(
                "attacker absorbed only {:.1}% of drop charges",
                r.attacker_drop_share * 100.0
            ),
        ),
        Check::new(
            "injection",
            r.net_faults > 0 && r.client_faults > 0,
            "a fault category never fired".to_string(),
        ),
    ];

    Ok(Outcome {
        headline,
        checks,
        check_ok: "graceful degradation with attacker-pays charging",
        session: Some(session),
        ..Outcome::default()
    })
}

fn run_mem(args: &ScenarioArgs) -> Result<Outcome, String> {
    let params = MemhogTenantsParams {
        secs: if args.reduced { 6 } else { 12 },
        ..MemhogTenantsParams::default()
    };

    rctrace::start(TraceConfig::default());
    let r = run_memhog_tenants(params);
    let session = rctrace::finish().ok_or("no trace session captured")?;

    let headline = vec![format!(
        "memhog_tenants: guaranteed hit rate {:.1}% shared vs {:.1}% solo | \
         p99 {:.2} ms shared vs {:.2} ms solo | {:.0} req/s shared vs {:.0} solo | \
         hog: {} reclaims ({} KiB), {} oom kills, {} refusals, {} pressure events",
        r.shared.cache_hit_rate * 100.0,
        r.solo.cache_hit_rate * 100.0,
        r.shared.p99_ms,
        r.solo.p99_ms,
        r.shared.throughput,
        r.solo.throughput,
        r.mem.reclaims,
        r.mem.reclaimed_bytes / 1024,
        r.mem.oom_kills,
        r.mem.refusals,
        r.mem.pressure_events,
    )];

    let checks = vec![
        Check::new(
            "reclaim",
            r.mem.reclaims > 0,
            "hog never lost a cache page".to_string(),
        ),
        Check::new(
            "oom",
            r.mem.oom_kills > 0,
            "hog never OOM-killed".to_string(),
        ),
        Check::new(
            "baseline",
            r.solo.cache_hit_rate > 0.9,
            format!("solo hit rate only {:.1}%", r.solo.cache_hit_rate * 100.0),
        ),
        Check::new(
            "isolation-hits",
            r.shared.cache_hit_rate >= 0.95 * r.solo.cache_hit_rate,
            format!(
                "hit rate fell {:.1}% -> {:.1}%",
                r.solo.cache_hit_rate * 100.0,
                r.shared.cache_hit_rate * 100.0
            ),
        ),
        Check::new(
            "isolation-p99",
            r.shared.p99_ms <= 1.05 * r.solo.p99_ms.max(0.01),
            format!(
                "p99 grew {:.2} ms -> {:.2} ms",
                r.solo.p99_ms, r.shared.p99_ms
            ),
        ),
    ];

    Ok(Outcome {
        headline,
        checks,
        check_ok: "hog reclaimed and OOM-killed; guaranteed tenant within 5% of solo",
        session: Some(session),
        ..Outcome::default()
    })
}

fn run_cluster(args: &ScenarioArgs) -> Result<Outcome, String> {
    let mut params = if args.reduced {
        ClusterTenantsParams::reduced()
    } else {
        ClusterTenantsParams::default()
    };
    if let Some(n) = args.nodes {
        params.nodes = n.max(1);
    }
    if let Some(c) = args.clients {
        params.clients_per_tenant = c.max(1);
    }

    // Bound each node's retained ring: eight full kernels at the default
    // 1M-event ring would merge into a >100 MB artifact.
    let (r, sessions) = run_cluster_tenants_traced(
        params,
        TraceConfig {
            ring_capacity: 1 << 14,
            ..TraceConfig::default()
        },
    );

    let headline = vec![
        format!(
            "cluster_tenants nodes={} clients={}: split {} | {:.0} req/s total | \
             {} placements, {} drains -> replicas {:?}",
            r.nodes,
            r.clients,
            r.configured
                .iter()
                .zip(&r.measured)
                .map(|(c, m)| format!("{:.0}%->{:.1}%", c * 100.0, m * 100.0))
                .collect::<Vec<_>>()
                .join(" "),
            r.total_throughput,
            r.placements.len(),
            r.drains.len(),
            r.replicas,
        ),
        format!(
            "  lanes: {} forwarded, {} assigned, {} unroutable | wire {:.3} ms busy vs \
             {:.3} ms charged ({}) | {} kernel events",
            r.forwarded,
            r.assigned,
            r.unroutable,
            r.lane_busy_ns as f64 / 1e6,
            r.tx_wire_ns as f64 / 1e6,
            if r.conserved { "conserved" } else { "LEAKED" },
            r.sim_events,
        ),
    ];

    let mut checks = vec![
        Check::new(
            "conservation",
            r.conserved,
            format!(
                "lane busy {} ns vs tx charged {} ns",
                r.lane_busy_ns, r.tx_wire_ns
            ),
        ),
        Check::new(
            "placement",
            !r.placements.is_empty(),
            "bronze starts capacity-confined; the orchestrator never placed".to_string(),
        ),
        Check::new(
            "routable",
            r.unroutable == 0,
            format!("{} packets had no route", r.unroutable),
        ),
    ];
    for (c, m) in r.configured.iter().zip(&r.measured) {
        checks.push(Check::new(
            "global-split",
            (c - m).abs() <= 0.02,
            format!(
                "configured {:.0}% vs measured {:.1}% globally",
                c * 100.0,
                m * 100.0
            ),
        ));
    }

    Ok(Outcome {
        headline,
        checks,
        check_ok: "global split within 2 points after rebalance, wire accounting conserved",
        cluster_sessions: sessions,
        cluster: Some(r),
        ..Outcome::default()
    })
}
