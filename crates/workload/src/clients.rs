//! Closed-loop HTTP clients with S-Client-style retry behaviour.
//!
//! Each client runs a classic closed loop: open a connection, send one
//! request, wait for the response, repeat — optionally reusing the
//! connection (persistent HTTP) and optionally abandoning a request that
//! exceeds a timeout and immediately retrying on a fresh connection, which
//! is what keeps offered load constant under SYN drops (the S-Client
//! technique of Banga & Druschel '97, used by the paper's measurement
//! infrastructure).

use httpsim::{encode_request, ReqKind};
use simcore::fault::{ClientFault, FaultCounts, FaultInjector, FaultPlan};
use simcore::trace::{self, TraceEventKind};
use simcore::Nanos;
use simnet::{FlowKey, IpAddr, Packet, PacketKind};
use simos::{World, WorldAction};

use crate::metrics::ClientMetrics;

/// Configuration of one client.
#[derive(Clone, Debug)]
pub struct ClientSpec {
    /// The client's source address (must be unique within a world).
    pub addr: IpAddr,
    /// Destination port.
    pub port: u16,
    /// Request kind.
    pub kind: ReqKind,
    /// Document id requested.
    pub doc: u32,
    /// Cycle through `doc .. doc + doc_cycle` across successive requests
    /// (≤ 1 = always request `doc`). Lets a client sweep a document set
    /// larger than any cache, forcing steady misses on disk-backed
    /// servers.
    pub doc_cycle: u32,
    /// Metrics class.
    pub class: usize,
    /// Idle time between response and next request (0 = closed loop at
    /// full speed).
    pub think: Nanos,
    /// Abandon a request and retry on a fresh connection after this long
    /// (None = wait forever).
    pub timeout: Option<Nanos>,
    /// When the client starts.
    pub start_at: Nanos,
    /// Requests per connection for persistent clients (None = unlimited).
    pub requests_per_conn: Option<u32>,
    /// Base retry backoff after an abandoned or refused request: the k-th
    /// consecutive failure waits `backoff * 2^min(k, 6)` before retrying
    /// (zero = classic S-Client immediate retry).
    pub backoff: Nanos,
}

impl ClientSpec {
    /// A default closed-loop non-persistent static client.
    pub fn staticloop(addr: IpAddr, class: usize) -> Self {
        ClientSpec {
            addr,
            port: 80,
            kind: ReqKind::Static,
            doc: 0,
            doc_cycle: 0,
            class,
            think: Nanos::ZERO,
            timeout: None,
            start_at: Nanos::from_micros(10),
            requests_per_conn: None,
            backoff: Nanos::ZERO,
        }
    }

    /// Sets the request kind (builder style).
    pub fn with_kind(mut self, kind: ReqKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the abandon-and-retry timeout (builder style).
    pub fn with_timeout(mut self, t: Nanos) -> Self {
        self.timeout = Some(t);
        self
    }

    /// Sets the start time (builder style).
    pub fn starting_at(mut self, t: Nanos) -> Self {
        self.start_at = t;
        self
    }

    /// Cycles through `n` documents starting at `doc` (builder style).
    pub fn cycling_docs(mut self, n: u32) -> Self {
        self.doc_cycle = n;
        self
    }

    /// Sets the exponential retry backoff base (builder style).
    pub fn with_backoff(mut self, base: Nanos) -> Self {
        self.backoff = base;
        self
    }
}

#[derive(Debug)]
struct ClientState {
    next_port: u16,
    /// Monotonically increasing request number; stale timers are detected
    /// by comparing against it.
    req_seq: u64,
    started_at: Nanos,
    /// Requests sent on the current connection (persistent mode).
    on_conn: u32,
    /// Waiting for a response right now.
    in_flight: bool,
    /// Offset into the client's document cycle.
    doc_off: u32,
    /// Consecutive failures since the last completed response; drives the
    /// exponential backoff when [`ClientSpec::backoff`] is non-zero.
    retries: u32,
}

/// Timer-tag sub-spaces within a client's tag block.
const TAG_START: u64 = 0;
const TAG_TIMEOUT: u64 = 1;
const TAGS_PER_CLIENT: u64 = 4;

/// A set of closed-loop HTTP clients implementing [`World`].
///
/// Tag space: client `i` uses tags `[i*4, i*4+4)`; keep that in mind when
/// composing with other worlds (use [`crate::CompositeWorld`]).
pub struct HttpClients {
    specs: Vec<ClientSpec>,
    states: Vec<ClientState>,
    /// Source address → client index. Response demux is one hash lookup,
    /// which is what keeps 100k-client cluster worlds off an O(n) scan
    /// per packet.
    index: std::collections::HashMap<IpAddr, usize>,
    /// Client-side fault injector (slow / abandoning / malformed clients).
    injector: Option<FaultInjector>,
    /// Collected metrics (read after the run).
    pub metrics: ClientMetrics,
}

impl HttpClients {
    /// Creates the world; metrics are windowed to
    /// `[window_start, window_end]`.
    pub fn new(specs: Vec<ClientSpec>, window_start: Nanos, window_end: Nanos) -> Self {
        let n_classes = specs.iter().map(|s| s.class + 1).max().unwrap_or(1);
        let states = specs
            .iter()
            .map(|_| ClientState {
                next_port: 999,
                req_seq: 0,
                started_at: Nanos::ZERO,
                on_conn: 0,
                in_flight: false,
                doc_off: 0,
                retries: 0,
            })
            .collect();
        let index = specs.iter().enumerate().map(|(i, s)| (s.addr, i)).collect();
        HttpClients {
            specs,
            states,
            index,
            injector: None,
            metrics: ClientMetrics::new(n_classes, window_start, window_end),
        }
    }

    /// Enables client-side fault injection (builder style). Only the
    /// client category of `plan` is consulted; packet and disk faults are
    /// drawn by the kernel from its own streams, so the two never
    /// interfere.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        self.injector = Some(FaultInjector::new(plan));
        self
    }

    /// Counts of faults this world has injected so far.
    pub fn fault_counts(&self) -> FaultCounts {
        self.injector
            .as_ref()
            .map(|i| i.counts())
            .unwrap_or_default()
    }

    /// Arms every client's start timer on the kernel.
    pub fn arm(&self, k: &mut simos::Kernel) {
        self.arm_with(|tag, at| k.arm_world_timer(tag, at));
    }

    /// Arms start timers with a composite-world tag offset.
    pub fn arm_offset(&self, k: &mut simos::Kernel, offset: u64) {
        self.arm_with(|tag, at| k.arm_world_timer(offset + tag, at));
    }

    /// Arms every client's start timer through an arbitrary timer sink —
    /// the host-agnostic form of [`HttpClients::arm`], used when the world
    /// is hosted off-kernel (e.g. on a cluster front-end node).
    pub fn arm_with(&self, mut arm: impl FnMut(u64, Nanos)) {
        for (i, spec) in self.specs.iter().enumerate() {
            arm(i as u64 * TAGS_PER_CLIENT + TAG_START, spec.start_at);
        }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    fn client_of(&self, addr: IpAddr) -> Option<usize> {
        self.index.get(&addr).copied()
    }

    fn flow(&self, i: usize) -> FlowKey {
        FlowKey::new(
            self.specs[i].addr,
            self.states[i].next_port,
            self.specs[i].port,
        )
    }

    /// Encodes the next request, advancing the document cycle.
    fn request_len(&mut self, i: usize) -> u32 {
        let spec = &self.specs[i];
        let doc = spec.doc + self.states[i].doc_off;
        if spec.doc_cycle > 1 {
            self.states[i].doc_off = (self.states[i].doc_off + 1) % spec.doc_cycle;
        }
        encode_request(spec.kind, doc)
    }

    /// Opens a fresh connection and sends a SYN.
    fn new_connection(&mut self, i: usize, now: Nanos, actions: &mut Vec<WorldAction>) {
        let st = &mut self.states[i];
        st.next_port = st.next_port.wrapping_add(1);
        if st.next_port < 1000 {
            st.next_port = 1000;
        }
        st.req_seq += 1;
        st.started_at = now;
        st.on_conn = 0;
        st.in_flight = true;
        actions.push(WorldAction::SendPacket {
            pkt: Packet::new(self.flow(i), PacketKind::Syn),
            delay: Nanos::ZERO,
        });
        self.arm_timeout(i, actions);
    }

    /// Sends the next request on the established connection.
    fn next_request(&mut self, i: usize, now: Nanos, actions: &mut Vec<WorldAction>) {
        let st = &mut self.states[i];
        st.req_seq += 1;
        st.started_at = now;
        st.on_conn += 1;
        st.in_flight = true;
        self.send_request(i, now, actions);
        self.arm_timeout(i, actions);
    }

    /// Emits the Data packet for the client's next request, applying any
    /// client-side fault drawn for it. An abandoning client goes silent —
    /// the request stays in flight so the timeout machinery (if armed)
    /// records the abandon and retries.
    fn send_request(&mut self, i: usize, now: Nanos, actions: &mut Vec<WorldAction>) {
        let mut len = self.request_len(i);
        let mut delay = Nanos::ZERO;
        if let Some(inj) = self.injector.as_mut() {
            match inj.client_fault(now) {
                Some(ClientFault::Abandon) => {
                    trace::emit_at(now, || TraceEventKind::FaultClientAbandon {
                        client: i as u32,
                    });
                    return;
                }
                Some(ClientFault::Malformed) => {
                    trace::emit_at(now, || TraceEventKind::FaultClientMalformed {
                        client: i as u32,
                    });
                    // Shift the encoded kind out of range so the server
                    // rejects the request as garbage.
                    len = len.wrapping_add(7);
                }
                Some(ClientFault::Slow(d)) => {
                    trace::emit_at(now, || TraceEventKind::FaultClientSlow {
                        client: i as u32,
                        delay: d,
                    });
                    delay = d;
                }
                None => {}
            }
        }
        actions.push(WorldAction::SendPacket {
            pkt: Packet::new(self.flow(i), PacketKind::Data { bytes: len }),
            delay,
        });
    }

    /// Schedules the next attempt after a failure, honouring the spec's
    /// exponential backoff (immediate S-Client retry when it is zero).
    fn retry_after_failure(&mut self, i: usize, now: Nanos, actions: &mut Vec<WorldAction>) {
        let backoff = self.specs[i].backoff;
        if backoff.is_zero() {
            self.new_connection(i, now, actions);
            return;
        }
        let st = &mut self.states[i];
        st.in_flight = false;
        // Reconnect from scratch once the backoff expires.
        st.on_conn = 0;
        let k = st.retries.min(6);
        st.retries += 1;
        actions.push(WorldAction::SetTimer {
            tag: i as u64 * TAGS_PER_CLIENT + TAG_START,
            delay: backoff * (1u64 << k),
        });
    }

    fn arm_timeout(&self, i: usize, actions: &mut Vec<WorldAction>) {
        if let Some(t) = self.specs[i].timeout {
            actions.push(WorldAction::SetTimer {
                tag: i as u64 * TAGS_PER_CLIENT + TAG_TIMEOUT,
                delay: t,
            });
        }
    }

    /// After a completed response, either reuse the connection, think, or
    /// reconnect.
    fn after_response(&mut self, i: usize, now: Nanos, actions: &mut Vec<WorldAction>) {
        let spec = self.specs[i].clone();
        self.states[i].in_flight = false;
        let think = spec.think;
        if spec.kind == ReqKind::StaticKeepAlive
            && spec
                .requests_per_conn
                .map(|m| self.states[i].on_conn < m)
                .unwrap_or(true)
        {
            if think.is_zero() {
                self.next_request(i, now, actions);
            } else {
                actions.push(WorldAction::SetTimer {
                    tag: i as u64 * TAGS_PER_CLIENT + TAG_START,
                    delay: think,
                });
            }
        } else if think.is_zero() {
            self.new_connection(i, now, actions);
        } else {
            actions.push(WorldAction::SetTimer {
                tag: i as u64 * TAGS_PER_CLIENT + TAG_START,
                delay: think,
            });
        }
    }
}

impl World for HttpClients {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        let Some(i) = self.client_of(pkt.flow.src) else {
            return;
        };
        if pkt.flow != self.flow(i) {
            return; // A stale connection's packet.
        }
        match pkt.kind {
            PacketKind::SynAck => {
                if !self.states[i].in_flight {
                    return; // Duplicate SYN-ACK after we gave up.
                }
                self.states[i].on_conn = 1;
                actions.push(WorldAction::SendPacket {
                    pkt: Packet::new(pkt.flow, PacketKind::Ack),
                    delay: Nanos::ZERO,
                });
                self.send_request(i, now, actions);
            }
            PacketKind::Data { .. } => {
                if !self.states[i].in_flight {
                    return;
                }
                let latency = now - self.states[i].started_at;
                let class = self.specs[i].class;
                self.metrics.record(class, latency, now);
                self.states[i].retries = 0;
                self.after_response(i, now, actions);
            }
            PacketKind::Rst if self.states[i].in_flight => {
                // Connection refused or torn down: retry from scratch.
                self.metrics.record_abandoned(self.specs[i].class);
                self.retry_after_failure(i, now, actions);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        let i = (tag / TAGS_PER_CLIENT) as usize;
        if i >= self.specs.len() {
            return;
        }
        match tag % TAGS_PER_CLIENT {
            TAG_START if !self.states[i].in_flight => {
                if self.states[i].on_conn > 0 && self.specs[i].kind == ReqKind::StaticKeepAlive {
                    self.next_request(i, now, actions);
                } else {
                    self.new_connection(i, now, actions);
                }
            }
            // Abandon the request if it is still the one we armed the
            // timer for (sequence numbers disambiguate).
            TAG_TIMEOUT
                if self.states[i].in_flight
                    && now.saturating_sub(self.states[i].started_at)
                        >= self.specs[i].timeout.unwrap_or(Nanos::MAX) =>
            {
                self.metrics.record_abandoned(self.specs[i].class);
                // Reset the server side and retry (immediately, unless the
                // spec asks for backoff).
                actions.push(WorldAction::SendPacket {
                    pkt: Packet::new(self.flow(i), PacketKind::Rst),
                    delay: Nanos::ZERO,
                });
                self.retry_after_failure(i, now, actions);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use httpsim::stats::shared_stats;
    use httpsim::{EventDrivenServer, ServerConfig};
    use rescon::Attributes;
    use simos::{Kernel, KernelConfig};

    fn run_clients(specs: Vec<ClientSpec>, secs: u64) -> HttpClients {
        let stats = shared_stats();
        let mut k = Kernel::new(KernelConfig::unmodified());
        k.spawn_process(
            Box::new(EventDrivenServer::new(ServerConfig::default(), stats)),
            "httpd",
            None,
            Attributes::time_shared(10),
            None,
        );
        let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_secs(secs));
        clients.arm(&mut k);
        k.run(&mut clients, Nanos::from_secs(secs));
        clients
    }

    #[test]
    fn single_client_completes_requests() {
        let c = run_clients(vec![ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0)], 1);
        assert!(c.metrics.class(0).completed > 1000);
        assert!(c.metrics.mean_latency_ms(0) < 1.0);
    }

    #[test]
    fn persistent_client_faster_than_per_request() {
        let per_req = run_clients(vec![ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0)], 1);
        let keep = run_clients(
            vec![ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0)
                .with_kind(ReqKind::StaticKeepAlive)],
            1,
        );
        assert!(
            keep.metrics.class(0).completed > per_req.metrics.class(0).completed,
            "{} vs {}",
            keep.metrics.class(0).completed,
            per_req.metrics.class(0).completed
        );
    }

    #[test]
    fn think_time_throttles_request_rate() {
        let c = run_clients(
            vec![ClientSpec {
                think: Nanos::from_millis(10),
                ..ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0)
            }],
            1,
        );
        let done = c.metrics.class(0).completed;
        assert!((50..=110).contains(&done), "done = {done}");
    }

    #[test]
    fn requests_per_conn_bounds_persistent_connections() {
        let c = run_clients(
            vec![ClientSpec {
                kind: ReqKind::StaticKeepAlive,
                requests_per_conn: Some(5),
                ..ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0)
            }],
            1,
        );
        assert!(c.metrics.class(0).completed > 500);
    }

    #[test]
    fn classes_separate_metrics() {
        let c = run_clients(
            vec![
                ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0),
                ClientSpec::staticloop(IpAddr::new(10, 0, 0, 2), 1),
            ],
            1,
        );
        assert!(c.metrics.class(0).completed > 100);
        assert!(c.metrics.class(1).completed > 100);
    }
}
