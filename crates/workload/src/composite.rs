//! Composition of several worlds behind one kernel.
//!
//! Packets are routed to the part whose address filter matches the
//! packet's client (source) address; timer tags are partitioned into
//! per-part blocks of `2^48` so parts can use their own tag spaces freely.

use simnet::{CidrFilter, Packet};
use simos::{World, WorldAction};

use simcore::Nanos;

/// Bits reserved for the per-part tag block.
const PART_SHIFT: u32 = 48;

/// A world made of several sub-worlds.
pub struct CompositeWorld {
    parts: Vec<(CidrFilter, Box<dyn World>)>,
}

impl Default for CompositeWorld {
    fn default() -> Self {
        Self::new()
    }
}

impl CompositeWorld {
    /// Creates an empty composite.
    pub fn new() -> Self {
        CompositeWorld { parts: Vec::new() }
    }

    /// Adds a part handling clients in `filter`; returns the part's tag
    /// offset to pass to the part's `arm_offset`-style methods.
    pub fn add(&mut self, filter: CidrFilter, world: Box<dyn World>) -> u64 {
        self.parts.push((filter, world));
        ((self.parts.len() - 1) as u64) << PART_SHIFT
    }

    /// Returns the tag offset of part `i`.
    pub fn offset_of(&self, i: usize) -> u64 {
        (i as u64) << PART_SHIFT
    }

    /// Borrows part `i` for post-run inspection.
    pub fn part(&self, i: usize) -> &dyn World {
        self.parts[i].1.as_ref()
    }

    /// Mutably borrows part `i` (e.g. to read metrics).
    pub fn part_mut(&mut self, i: usize) -> &mut dyn World {
        self.parts[i].1.as_mut()
    }

    /// Takes the composite apart (to recover owned parts after a run).
    pub fn into_parts(self) -> Vec<Box<dyn World>> {
        self.parts.into_iter().map(|(_, w)| w).collect()
    }

    fn relabel(actions: &mut [WorldAction], offset: u64) {
        for a in actions.iter_mut() {
            if let WorldAction::SetTimer { tag, .. } = a {
                *tag |= offset;
            }
        }
    }
}

impl World for CompositeWorld {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        for (i, (filter, world)) in self.parts.iter_mut().enumerate() {
            if filter.matches(pkt.flow.src) {
                let mut local = Vec::new();
                world.on_packet(pkt, now, &mut local);
                Self::relabel(&mut local, (i as u64) << PART_SHIFT);
                actions.extend(local);
                return;
            }
        }
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        let i = (tag >> PART_SHIFT) as usize;
        let Some((_, world)) = self.parts.get_mut(i) else {
            return;
        };
        let mut local = Vec::new();
        world.on_timer(tag & ((1u64 << PART_SHIFT) - 1), now, &mut local);
        Self::relabel(&mut local, (i as u64) << PART_SHIFT);
        actions.extend(local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{FlowKey, IpAddr, PacketKind};

    /// Records what it sees and echoes a timer.
    struct Probe {
        packets: u64,
        timers: Vec<u64>,
    }

    impl World for Probe {
        fn on_packet(&mut self, _pkt: Packet, _now: Nanos, actions: &mut Vec<WorldAction>) {
            self.packets += 1;
            actions.push(WorldAction::SetTimer {
                tag: 7,
                delay: Nanos::from_micros(1),
            });
        }
        fn on_timer(&mut self, tag: u64, _now: Nanos, _actions: &mut Vec<WorldAction>) {
            self.timers.push(tag);
        }
    }

    fn pkt(src: IpAddr) -> Packet {
        Packet::new(FlowKey::new(src, 1, 80), PacketKind::Syn)
    }

    #[test]
    fn routes_by_source_filter() {
        let mut c = CompositeWorld::new();
        let off_a = c.add(
            CidrFilter::new(IpAddr::new(10, 0, 0, 0), 8),
            Box::new(Probe {
                packets: 0,
                timers: vec![],
            }),
        );
        let off_b = c.add(
            CidrFilter::any(),
            Box::new(Probe {
                packets: 0,
                timers: vec![],
            }),
        );
        assert_eq!(off_a, 0);
        assert_eq!(off_b, 1 << 48);
        let mut actions = Vec::new();
        c.on_packet(pkt(IpAddr::new(10, 1, 1, 1)), Nanos::ZERO, &mut actions);
        c.on_packet(pkt(IpAddr::new(192, 168, 0, 1)), Nanos::ZERO, &mut actions);
        c.on_packet(pkt(IpAddr::new(10, 9, 9, 9)), Nanos::ZERO, &mut actions);
        // The first part's timers got relabeled with offset 0; the second
        // with 1<<48.
        assert_eq!(actions.len(), 3);
        let tags: Vec<u64> = actions
            .iter()
            .map(|a| match a {
                WorldAction::SetTimer { tag, .. } => *tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![7, 7 | (1 << 48), 7]);
    }

    #[test]
    fn timers_dispatch_to_right_part() {
        let mut c = CompositeWorld::new();
        c.add(
            CidrFilter::new(IpAddr::new(10, 0, 0, 0), 8),
            Box::new(Probe {
                packets: 0,
                timers: vec![],
            }),
        );
        c.add(
            CidrFilter::any(),
            Box::new(Probe {
                packets: 0,
                timers: vec![],
            }),
        );
        let mut actions = Vec::new();
        c.on_timer(42, Nanos::ZERO, &mut actions);
        c.on_timer(42 | (1 << 48), Nanos::ZERO, &mut actions);
        c.on_timer(42 | (7 << 48), Nanos::ZERO, &mut actions); // no such part
    }

    #[test]
    fn unmatched_packet_is_dropped() {
        let mut c = CompositeWorld::new();
        c.add(
            CidrFilter::new(IpAddr::new(10, 0, 0, 0), 8),
            Box::new(Probe {
                packets: 0,
                timers: vec![],
            }),
        );
        let mut actions = Vec::new();
        c.on_packet(pkt(IpAddr::new(99, 0, 0, 1)), Nanos::ZERO, &mut actions);
        assert!(actions.is_empty());
    }
}
