//! The SYN flooder of §5.7: "a set of 'malicious' clients sent bogus SYN
//! packets to the server's HTTP port, at a high rate."
//!
//! Open-loop: the flooder never completes a handshake; it just cycles
//! source addresses through a configurable block (so the server's
//! per-prefix defense has something to isolate) and keeps a constant
//! aggregate SYN rate.

use simcore::Nanos;
use simnet::{FlowKey, IpAddr, Packet, PacketKind};
use simos::{World, WorldAction};

/// An open-loop SYN generator.
pub struct SynFlood {
    /// First address of the attacker block.
    pub base: IpAddr,
    /// Number of distinct source addresses to cycle through.
    pub hosts: u32,
    /// Aggregate SYN rate (SYNs per second); 0 disables the flood.
    pub rate_per_sec: f64,
    /// SYNs sent per timer tick (batching keeps the event count sane at
    /// high rates).
    pub burst: u32,
    /// Destination port.
    pub port: u16,
    /// When the flood starts.
    pub start_at: Nanos,
    next_host: u32,
    next_port: u16,
    /// Total SYNs sent.
    pub sent: u64,
}

impl SynFlood {
    /// Creates a flooder from `hosts` addresses starting at `base`.
    pub fn new(base: IpAddr, hosts: u32, rate_per_sec: f64, port: u16) -> Self {
        SynFlood {
            base,
            hosts: hosts.max(1),
            rate_per_sec,
            burst: 8,
            port,
            start_at: Nanos::from_millis(1),
            next_host: 0,
            next_port: 10_000,
            sent: 0,
        }
    }

    /// Arms the flood-start timer (tag 0 in this world's tag space).
    pub fn arm(&self, k: &mut simos::Kernel) {
        self.arm_offset(k, 0);
    }

    /// Arms with a composite-world tag offset.
    pub fn arm_offset(&self, k: &mut simos::Kernel, offset: u64) {
        if self.rate_per_sec > 0.0 {
            k.arm_world_timer(offset, self.start_at);
        }
    }

    fn interval(&self) -> Nanos {
        Nanos::from_micros_f64(self.burst as f64 / self.rate_per_sec * 1e6)
    }

    fn next_addr(&mut self) -> IpAddr {
        let a = IpAddr(self.base.0.wrapping_add(self.next_host));
        self.next_host = (self.next_host + 1) % self.hosts;
        a
    }
}

impl World for SynFlood {
    fn on_packet(&mut self, _pkt: Packet, _now: Nanos, _actions: &mut Vec<WorldAction>) {
        // Bogus SYNs: SYN-ACKs are ignored, handshakes never complete.
    }

    fn on_timer(&mut self, _tag: u64, _now: Nanos, actions: &mut Vec<WorldAction>) {
        if self.rate_per_sec <= 0.0 {
            return;
        }
        for _ in 0..self.burst {
            let src = self.next_addr();
            self.next_port = self.next_port.wrapping_add(1).max(1024);
            self.sent += 1;
            actions.push(WorldAction::SendPacket {
                pkt: Packet::new(
                    FlowKey::new(src, self.next_port, self.port),
                    PacketKind::Syn,
                ),
                delay: Nanos::ZERO,
            });
        }
        actions.push(WorldAction::SetTimer {
            tag: 0,
            delay: self.interval(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected() {
        let mut f = SynFlood::new(IpAddr::new(192, 168, 0, 0), 256, 10_000.0, 80);
        let mut actions = Vec::new();
        // Simulate ticks for one virtual second.
        let mut now = Nanos::ZERO;
        let mut sent = 0u64;
        while now < Nanos::from_secs(1) {
            actions.clear();
            f.on_timer(0, now, &mut actions);
            sent += actions
                .iter()
                .filter(|a| matches!(a, WorldAction::SendPacket { .. }))
                .count() as u64;
            let delay = actions
                .iter()
                .find_map(|a| match a {
                    WorldAction::SetTimer { delay, .. } => Some(*delay),
                    _ => None,
                })
                .expect("re-armed");
            now += delay;
        }
        let err = (sent as f64 - 10_000.0).abs() / 10_000.0;
        assert!(err < 0.01, "sent = {sent}");
    }

    #[test]
    fn addresses_cycle_through_block() {
        let mut f = SynFlood::new(IpAddr::new(192, 168, 0, 0), 4, 1000.0, 80);
        let mut actions = Vec::new();
        f.on_timer(0, Nanos::ZERO, &mut actions);
        let srcs: Vec<IpAddr> = actions
            .iter()
            .filter_map(|a| match a {
                WorldAction::SendPacket { pkt, .. } => Some(pkt.flow.src),
                _ => None,
            })
            .collect();
        assert_eq!(srcs.len(), 8);
        // 4 distinct hosts cycled twice.
        let distinct: std::collections::HashSet<_> = srcs.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn zero_rate_sends_nothing() {
        let mut f = SynFlood::new(IpAddr::new(192, 168, 0, 0), 4, 0.0, 80);
        let mut actions = Vec::new();
        f.on_timer(0, Nanos::ZERO, &mut actions);
        assert!(actions.is_empty());
    }
}
