//! Per-container metrics timelines and the compact metrics dump.
//!
//! The kernel samples the registry *opportunistically* from its main loop:
//! when [`crate::sample_due`] reports a due sample it builds one
//! [`ContainerSample`] row per live container and hands the batch to
//! [`crate::record_sample`]. No kernel events are injected and nothing in
//! the simulation observes the registry, so an instrumented run replays
//! exactly the schedule of an uninstrumented one.
//!
//! Sample points store *cumulative* counters; charge rates and the
//! received share are derived between consecutive points at export time.
//! The final [`ContainerTotals`] are copied verbatim from the container
//! table when the run ends, so the dump's per-container totals equal the
//! kernel's [`ResourceUsage`] aggregates exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use rescon::{MemClass, ResourceUsage};
use simcore::span::{Outcome, Phase, SpanBuffer, NUM_PHASES};
use simcore::trace::TraceEventKind;
use simcore::{Histogram, Nanos};

use crate::json::{f6, quote};
use crate::TraceSession;

/// A declarative per-tenant latency objective: "quantile `quantile` of
/// `container`'s request latencies stays under `threshold`".
///
/// The monitor is *online*: each completed request consumes error budget
/// when it exceeds the threshold, and once more than a `1 - quantile`
/// fraction of requests have done so, every further over-threshold
/// request is counted as a violation and emits an
/// [`TraceEventKind::SloViolation`] trace instant at its completion time.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable container id the objective applies to.
    pub container: u64,
    /// Human label for reports (e.g. the tenant name).
    pub label: String,
    /// Quantile the objective constrains (e.g. `0.99`).
    pub quantile: f64,
    /// Latency bound at that quantile.
    pub threshold: Nanos,
}

/// Online monitoring state for one registered [`SloSpec`].
#[derive(Clone, Debug)]
pub struct SloState {
    /// The registered objective.
    pub spec: SloSpec,
    /// Completed requests observed for the spec's container.
    pub total: u64,
    /// Requests whose latency exceeded the threshold.
    pub over: u64,
    /// Over-threshold requests arriving after the error budget was
    /// exhausted (each also emitted a trace instant).
    pub violations: u64,
}

/// One row of a metrics sample (or of the final snapshot), built by the
/// kernel for a single live container.
#[derive(Clone, Debug)]
pub struct ContainerSample {
    /// Stable container id (`Idx::as_u64`).
    pub container: u64,
    /// Attribute name; empty for anonymous containers.
    pub name: String,
    /// Cumulative usage as accounted by the container table.
    pub usage: ResourceUsage,
    /// Cumulative CPU of the container's subtree (destroyed descendants
    /// included).
    pub subtree_cpu: Nanos,
    /// Cumulative disk service time of the container's subtree.
    pub subtree_disk: Nanos,
    /// Cumulative transmit wire time of the container's subtree.
    pub subtree_tx: Nanos,
    /// Buffer-cache bytes currently resident on behalf of this container.
    pub cache_bytes: u64,
    /// Runnable threads currently charging this container.
    pub runnable: u32,
    /// SYN-queue entries across listeners bound to this container.
    pub syn_queue: u32,
    /// Guaranteed machine fraction (product of fixed shares to the root).
    pub effective_share: f64,
}

/// One stored point of a container's time series (cumulative counters).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplePoint {
    /// Virtual time of the sample.
    pub at: Nanos,
    /// Cumulative CPU charged (user + kernel).
    pub cpu: Nanos,
    /// Cumulative kernel-mode CPU charged.
    pub kernel_cpu: Nanos,
    /// Cumulative disk service time charged.
    pub disk: Nanos,
    /// Cumulative transmit wire time charged by the link scheduler.
    pub tx_time: Nanos,
    /// Cumulative packets received.
    pub pkts_rx: u64,
    /// Memory bytes currently charged.
    pub mem_bytes: u64,
    /// Per-class memory breakdown (indexed by `MemClass::index()`; all
    /// zeros on runs without the memory subsystem).
    pub mem_by_class: [u64; 5],
    /// Buffer-cache bytes currently resident.
    pub cache_bytes: u64,
    /// Runnable threads charging this container at the sample instant.
    pub runnable: u32,
    /// SYN-queue occupancy at the sample instant.
    pub syn_queue: u32,
    /// Effective (guaranteed) share at the sample instant.
    pub effective_share: f64,
}

/// Final aggregates for one container, copied from the container table at
/// the end of the run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ContainerTotals {
    /// The table's usage record, verbatim.
    pub usage: ResourceUsage,
    /// Subtree CPU including destroyed descendants.
    pub subtree_cpu: Nanos,
    /// Subtree disk time including destroyed descendants.
    pub subtree_disk: Nanos,
    /// Subtree transmit wire time including destroyed descendants.
    pub subtree_tx: Nanos,
}

/// Whole-system aggregates recorded at the end of the run.
///
/// CPU conservation holds exactly:
/// `root_subtree_cpu + floating_cpu + reaped_cpu == charged_cpu`, and the
/// disk analogue sums to `disk_busy`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GlobalTotals {
    /// Virtual time at which the run ended.
    pub end: Nanos,
    /// CPU charged to containers by the scheduler.
    pub charged_cpu: Nanos,
    /// Interrupt-level CPU charged to no principal.
    pub interrupt_cpu: Nanos,
    /// Context-switch and other uncharged overhead.
    pub overhead_cpu: Nanos,
    /// Idle CPU.
    pub idle_cpu: Nanos,
    /// Subtree CPU of the root container.
    pub root_subtree_cpu: Nanos,
    /// Subtree CPU of floating (orphaned) containers.
    pub floating_cpu: Nanos,
    /// CPU history of destroyed parentless containers.
    pub reaped_cpu: Nanos,
    /// Total disk busy time.
    pub disk_busy: Nanos,
    /// Subtree disk time of the root container.
    pub root_subtree_disk: Nanos,
    /// Subtree disk time of floating containers.
    pub floating_disk: Nanos,
    /// Disk history of destroyed parentless containers.
    pub reaped_disk: Nanos,
    /// Packets received by the NIC.
    pub pkts_in: u64,
    /// Packets transmitted.
    pub pkts_out: u64,
    /// Packets dropped at early demultiplexing.
    pub early_drops: u64,
    /// Scheduler context switches.
    pub ctx_switches: u64,
    /// Whether the kernel modelled a finite-bandwidth transmit link.
    /// When `false`, every link field below is zero and the metrics dump
    /// omits the link section entirely (keeping linkless goldens
    /// byte-identical).
    pub link_configured: bool,
    /// Total wire time the link spent transmitting.
    pub link_busy: Nanos,
    /// Total wire bytes transmitted.
    pub link_bytes: u64,
    /// Total packets transmitted over the finite link.
    pub link_pkts: u64,
    /// Subtree transmit wire time of the root container.
    pub root_subtree_tx: Nanos,
    /// Subtree transmit wire time of floating containers.
    pub floating_tx: Nanos,
    /// Transmit history of destroyed parentless containers.
    pub reaped_tx: Nanos,
    /// Whether the kernel ran with the `simmem` memory subsystem. When
    /// `false`, every mem field below is zero and the metrics dump omits
    /// the mem section entirely (keeping memory-unlimited goldens
    /// byte-identical).
    pub mem_configured: bool,
    /// Kernel memory currently accounted, all classes.
    pub mem_total: u64,
    /// Per-class breakdown, indexed by `rescon::MemClass::index()`.
    pub mem_by_class: [u64; 5],
    /// Cache pages stolen to satisfy charges.
    pub mem_reclaims: u64,
    /// Bytes freed by those steals.
    pub mem_reclaimed_bytes: u64,
    /// Container-targeted OOM kills.
    pub mem_oom_kills: u64,
    /// Hard allocations refused after reclaim and OOM.
    pub mem_refusals: u64,
    /// Memory-pressure events emitted.
    pub mem_pressure_events: u64,
}

/// End-of-run accounting for one simulated CPU.
///
/// On every CPU the four time categories partition that CPU's
/// wall-clock exactly, so summing `charged + interrupt + overhead +
/// idle` over all CPUs yields `ncpus × end`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CpuTotals {
    /// CPU time charged to containers by the scheduler on this CPU.
    pub charged_cpu: Nanos,
    /// Interrupt-level time consumed on this CPU.
    pub interrupt_cpu: Nanos,
    /// Context-switch and other uncharged overhead on this CPU.
    pub overhead_cpu: Nanos,
    /// Idle time on this CPU.
    pub idle_cpu: Nanos,
    /// Context switches taken on this CPU.
    pub ctx_switches: u64,
}

/// Time series, latency histogram, and final totals for one container.
#[derive(Clone, Debug)]
pub struct ContainerSeries {
    /// Attribute name; empty for anonymous containers.
    pub name: String,
    /// Sampled time series, in sample order.
    pub samples: Vec<SamplePoint>,
    /// Request-completion latency histogram (wired in by `httpsim`).
    pub latency: Histogram,
    /// Final aggregates (copied from the table at the end of the run).
    pub totals: ContainerTotals,
}

impl ContainerSeries {
    fn new() -> Self {
        ContainerSeries {
            name: String::new(),
            samples: Vec::new(),
            latency: Histogram::new(),
            totals: ContainerTotals::default(),
        }
    }

    /// Human-readable name: the attribute name, or `c<id>` when anonymous.
    pub fn display_name(&self, id: u64) -> String {
        if self.name.is_empty() {
            format!("c{id}")
        } else {
            self.name.clone()
        }
    }
}

/// The per-session metrics registry.
#[derive(Clone, Debug)]
pub struct Metrics {
    interval: Nanos,
    next_due: Nanos,
    /// Per-container series, keyed by stable container id.
    pub containers: BTreeMap<u64, ContainerSeries>,
    /// Whole-system aggregates (filled in at the end of the run).
    pub globals: GlobalTotals,
    /// Per-CPU accounting (filled in at the end of the run; empty for
    /// sessions recorded before the kernel reports CPUs, and length 1
    /// on a uniprocessor).
    pub per_cpu: Vec<CpuTotals>,
    /// Registered latency objectives and their online monitoring state
    /// (empty unless [`crate::register_slos`] was called).
    pub slos: Vec<SloState>,
    /// Mid-run policy swaps as `(at, plane, from, to)`, in order of
    /// application. Recorded directly (not scraped from the trace ring)
    /// so a long run cannot evict them; empty for swap-free runs, which
    /// keeps the `policy` metrics section gated off.
    pub policy_swaps: Vec<(Nanos, &'static str, &'static str, &'static str)>,
}

impl Metrics {
    pub(crate) fn new(interval: Nanos) -> Self {
        Metrics {
            interval: interval.max(Nanos::from_nanos(1)),
            // Zero: the first due check fires an initial (baseline)
            // snapshot at the start of the run.
            next_due: Nanos::ZERO,
            containers: BTreeMap::new(),
            globals: GlobalTotals::default(),
            per_cpu: Vec::new(),
            slos: Vec::new(),
            policy_swaps: Vec::new(),
        }
    }

    /// The configured sampling interval.
    pub fn interval(&self) -> Nanos {
        self.interval
    }

    pub(crate) fn next_due(&self) -> Nanos {
        self.next_due
    }

    pub(crate) fn record_sample(&mut self, at: Nanos, rows: &[ContainerSample]) {
        while self.next_due <= at {
            self.next_due += self.interval;
        }
        for r in rows {
            let e = self
                .containers
                .entry(r.container)
                .or_insert_with(ContainerSeries::new);
            if e.name.is_empty() && !r.name.is_empty() {
                e.name = r.name.clone();
            }
            e.samples.push(SamplePoint {
                at,
                cpu: r.usage.cpu,
                kernel_cpu: r.usage.kernel_cpu,
                disk: r.usage.disk_time,
                tx_time: r.usage.tx_time,
                pkts_rx: r.usage.pkts_rx,
                mem_bytes: r.usage.mem_bytes,
                mem_by_class: r.usage.mem_by_class,
                cache_bytes: r.cache_bytes,
                runnable: r.runnable,
                syn_queue: r.syn_queue,
                effective_share: r.effective_share,
            });
        }
    }

    pub(crate) fn register_slos(&mut self, specs: Vec<SloSpec>) {
        self.slos = specs
            .into_iter()
            .map(|spec| SloState {
                spec,
                total: 0,
                over: 0,
                violations: 0,
            })
            .collect();
    }

    pub(crate) fn record_latency(
        &mut self,
        container: u64,
        latency: Nanos,
        at: Nanos,
        request: u64,
    ) {
        self.containers
            .entry(container)
            .or_insert_with(ContainerSeries::new)
            .latency
            .record(latency);
        for s in self
            .slos
            .iter_mut()
            .filter(|s| s.spec.container == container)
        {
            s.total += 1;
            if latency <= s.spec.threshold {
                continue;
            }
            s.over += 1;
            // Error budget: an SLO at quantile q tolerates a 1-q fraction
            // of requests over the threshold. Once that budget is burned,
            // each further over-threshold request is a violation.
            if s.over as f64 > (1.0 - s.spec.quantile) * s.total as f64 {
                s.violations += 1;
                let (c, threshold) = (s.spec.container, s.spec.threshold);
                simcore::trace::emit_at(at, || TraceEventKind::SloViolation {
                    container: c,
                    request,
                    latency,
                    threshold,
                });
            }
        }
    }

    pub(crate) fn record_totals(&mut self, globals: GlobalTotals, rows: &[ContainerSample]) {
        self.globals = globals;
        for r in rows {
            let e = self
                .containers
                .entry(r.container)
                .or_insert_with(ContainerSeries::new);
            if e.name.is_empty() && !r.name.is_empty() {
                e.name = r.name.clone();
            }
            e.totals = ContainerTotals {
                usage: r.usage,
                subtree_cpu: r.subtree_cpu,
                subtree_disk: r.subtree_disk,
                subtree_tx: r.subtree_tx,
            };
        }
    }

    pub(crate) fn record_cpu_totals(&mut self, cpus: &[CpuTotals]) {
        self.per_cpu = cpus.to_vec();
    }
}

/// Renders the compact metrics dump: global aggregates, trace-ring
/// statistics, and per-container totals, latency summaries, and sampled
/// time series. All durations are integer nanoseconds; the document is
/// byte-identical across runs of the same simulation.
pub fn metrics_json(session: &TraceSession) -> String {
    let m = &session.metrics;
    let g = &m.globals;
    let mut out = String::with_capacity(1 << 14);
    let _ = write!(out, "{{\"interval_ns\":{}", m.interval().as_nanos());
    let _ = write!(
        out,
        ",\"globals\":{{\"end_ns\":{},\"charged_cpu_ns\":{},\"interrupt_cpu_ns\":{},\
         \"overhead_cpu_ns\":{},\"idle_cpu_ns\":{},\"root_subtree_cpu_ns\":{},\
         \"floating_cpu_ns\":{},\"reaped_cpu_ns\":{},\"disk_busy_ns\":{},\
         \"root_subtree_disk_ns\":{},\"floating_disk_ns\":{},\"reaped_disk_ns\":{},\
         \"pkts_in\":{},\"pkts_out\":{},\"early_drops\":{},\"ctx_switches\":{}}}",
        g.end.as_nanos(),
        g.charged_cpu.as_nanos(),
        g.interrupt_cpu.as_nanos(),
        g.overhead_cpu.as_nanos(),
        g.idle_cpu.as_nanos(),
        g.root_subtree_cpu.as_nanos(),
        g.floating_cpu.as_nanos(),
        g.reaped_cpu.as_nanos(),
        g.disk_busy.as_nanos(),
        g.root_subtree_disk.as_nanos(),
        g.floating_disk.as_nanos(),
        g.reaped_disk.as_nanos(),
        g.pkts_in,
        g.pkts_out,
        g.early_drops,
        g.ctx_switches,
    );
    // A link section appears only when a finite-bandwidth link was
    // configured, so that linkless dumps (and their golden files) are
    // unchanged.
    if g.link_configured {
        let _ = write!(
            out,
            ",\"link\":{{\"busy_ns\":{},\"wire_bytes\":{},\"pkts\":{},\
             \"root_subtree_tx_ns\":{},\"floating_tx_ns\":{},\"reaped_tx_ns\":{}}}",
            g.link_busy.as_nanos(),
            g.link_bytes,
            g.link_pkts,
            g.root_subtree_tx.as_nanos(),
            g.floating_tx.as_nanos(),
            g.reaped_tx.as_nanos(),
        );
    }
    // Likewise the mem section only appears when the kernel ran with the
    // `simmem` memory subsystem.
    if g.mem_configured {
        let _ = write!(
            out,
            ",\"mem\":{{\"total_bytes\":{},\"by_class\":{{",
            g.mem_total
        );
        for (i, class) in MemClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{}",
                quote(class.label()),
                g.mem_by_class[class.index()]
            );
        }
        let _ = write!(
            out,
            "}},\"reclaims\":{},\"reclaimed_bytes\":{},\"oom_kills\":{},\
             \"refusals\":{},\"pressure_events\":{}}}",
            g.mem_reclaims,
            g.mem_reclaimed_bytes,
            g.mem_oom_kills,
            g.mem_refusals,
            g.mem_pressure_events,
        );
    }
    let _ = write!(
        out,
        ",\"trace\":{{\"emitted\":{},\"dropped\":{},\"retained\":{}}}",
        session.trace.emitted,
        session.trace.dropped,
        session.trace.events.len()
    );
    // SLO and span sections appear only when SLOs were registered /
    // span recording was on, so that all pre-rcspan dumps (and their
    // golden files) are unchanged.
    if !m.slos.is_empty() {
        out.push_str(",\"slo\":[");
        for (i, s) in m.slos.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let achieved = m
                .containers
                .get(&s.spec.container)
                .map(|c| c.latency.quantile_upper_bound(s.spec.quantile))
                .unwrap_or(Nanos::ZERO);
            let _ = write!(
                out,
                "{{\"container\":{},\"label\":{},\"quantile\":{},\"threshold_ns\":{},\
                 \"requests\":{},\"over_threshold\":{},\"violations\":{},\
                 \"achieved_ns\":{},\"met\":{}}}",
                s.spec.container,
                quote(&s.spec.label),
                f6(s.spec.quantile),
                s.spec.threshold.as_nanos(),
                s.total,
                s.over,
                s.violations,
                achieved.as_nanos(),
                s.violations == 0,
            );
        }
        out.push(']');
    }
    if let Some(spans) = &session.spans {
        write_spans(&mut out, m, spans);
    }
    // A per-CPU section appears only on multiprocessor runs so that
    // uniprocessor dumps (and their golden files) are unchanged.
    if m.per_cpu.len() > 1 {
        out.push_str(",\"cpus\":[");
        for (i, c) in m.per_cpu.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"cpu\":{},\"charged_cpu_ns\":{},\"interrupt_cpu_ns\":{},\
                 \"overhead_cpu_ns\":{},\"idle_cpu_ns\":{},\"ctx_switches\":{}}}",
                i,
                c.charged_cpu.as_nanos(),
                c.interrupt_cpu.as_nanos(),
                c.overhead_cpu.as_nanos(),
                c.idle_cpu.as_nanos(),
                c.ctx_switches,
            );
        }
        out.push(']');
    }
    // A policy section appears only when at least one mid-run policy
    // swap occurred, so swap-free dumps (and all pre-rcpolicy goldens)
    // are byte-identical to before the policy plane existed. Swaps are
    // read from the metrics collector, not the trace ring: ring
    // eviction on a long run must not lose control-plane history.
    if !m.policy_swaps.is_empty() {
        let swaps: Vec<(Nanos, &str, &str, &str)> = m
            .policy_swaps
            .iter()
            .map(|&(at, plane, from, to)| (at, plane, from, to))
            .collect();
        write_policy(&mut out, m, g.end, &swaps);
    }
    out.push_str(",\"containers\":[");
    for (i, (&id, series)) in m.containers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let t = &series.totals;
        let u = &t.usage;
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":{}",
            id,
            quote(&series.display_name(id))
        );
        let _ = write!(
            out,
            ",\"totals\":{{\"cpu_ns\":{},\"kernel_cpu_ns\":{},\"pkts_rx\":{},\"pkts_tx\":{},\
             \"bytes_rx\":{},\"bytes_tx\":{},\"mem_bytes\":{},\"mem_peak\":{},\"disk_ns\":{},\
             \"disk_reads\":{},\"disk_bytes\":{},\"sockets\":{},\"syscalls\":{},\
             \"subtree_cpu_ns\":{},\"subtree_disk_ns\":{}",
            u.cpu.as_nanos(),
            u.kernel_cpu.as_nanos(),
            u.pkts_rx,
            u.pkts_tx,
            u.bytes_rx,
            u.bytes_tx,
            u.mem_bytes,
            u.mem_peak,
            u.disk_time.as_nanos(),
            u.disk_reads,
            u.disk_bytes,
            u.sockets,
            u.syscalls,
            t.subtree_cpu.as_nanos(),
            t.subtree_disk.as_nanos(),
        );
        // Transmit fields ride along only on link-modelled runs.
        if g.link_configured {
            let _ = write!(
                out,
                ",\"tx_ns\":{},\"subtree_tx_ns\":{}",
                u.tx_time.as_nanos(),
                t.subtree_tx.as_nanos(),
            );
        }
        // Per-class memory breakdown rides along only on simmem runs.
        if g.mem_configured {
            out.push_str(",\"mem_by_class\":{");
            for (j, class) in MemClass::ALL.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{}:{}",
                    quote(class.label()),
                    u.mem_by_class[class.index()]
                );
            }
            out.push('}');
        }
        out.push('}');
        let l = &series.latency;
        let _ = write!(
            out,
            ",\"latency\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\
             \"p999_ns\":{},\"max_ns\":{}}}",
            l.count(),
            l.mean().as_nanos(),
            l.quantile_upper_bound(0.5).as_nanos(),
            l.quantile_upper_bound(0.99).as_nanos(),
            l.quantile_upper_bound(0.999).as_nanos(),
            l.max().as_nanos(),
        );
        out.push_str(",\"samples\":[");
        let mut prev = SamplePoint {
            at: Nanos::ZERO,
            cpu: Nanos::ZERO,
            kernel_cpu: Nanos::ZERO,
            disk: Nanos::ZERO,
            tx_time: Nanos::ZERO,
            pkts_rx: 0,
            mem_bytes: 0,
            mem_by_class: [0; 5],
            cache_bytes: 0,
            runnable: 0,
            syn_queue: 0,
            effective_share: 0.0,
        };
        for (j, p) in series.samples.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let dt = p.at.saturating_sub(prev.at);
            let dt_s = dt.as_secs_f64();
            let (received_share, disk_rate, pkt_rate) = if dt_s > 0.0 {
                (
                    p.cpu.saturating_sub(prev.cpu).as_secs_f64() / dt_s,
                    p.disk.saturating_sub(prev.disk).as_secs_f64() / dt_s,
                    p.pkts_rx.saturating_sub(prev.pkts_rx) as f64 / dt_s,
                )
            } else {
                (0.0, 0.0, 0.0)
            };
            let _ = write!(
                out,
                "{{\"at_ns\":{},\"cpu_ns\":{},\"kernel_cpu_ns\":{},\"disk_ns\":{},\
                 \"pkts_rx\":{},\"mem_bytes\":{},\"cache_bytes\":{},\"runnable\":{},\
                 \"syn_queue\":{},\"effective_share\":{},\"received_share\":{},\
                 \"disk_rate\":{},\"pkt_rate\":{}",
                p.at.as_nanos(),
                p.cpu.as_nanos(),
                p.kernel_cpu.as_nanos(),
                p.disk.as_nanos(),
                p.pkts_rx,
                p.mem_bytes,
                p.cache_bytes,
                p.runnable,
                p.syn_queue,
                f6(p.effective_share),
                f6(received_share),
                f6(disk_rate),
                f6(pkt_rate),
            );
            if g.link_configured {
                let dt_s2 = p.at.saturating_sub(prev.at).as_secs_f64();
                let tx_rate = if dt_s2 > 0.0 {
                    p.tx_time.saturating_sub(prev.tx_time).as_secs_f64() / dt_s2
                } else {
                    0.0
                };
                let _ = write!(
                    out,
                    ",\"tx_ns\":{},\"tx_rate\":{}",
                    p.tx_time.as_nanos(),
                    f6(tx_rate),
                );
            }
            out.push('}');
            prev = *p;
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Nearest-rank quantile over an ascending-sorted sample set (rank =
/// `ceil(q·n)` clamped to `[1, n]`); `0` for an empty set.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Renders the `"spans"` section: global span counters plus, per
/// container, outcome counts, end-to-end quantiles, per-phase totals and
/// quantiles, and the p99 blame verdict (which phase dominates the
/// slowest 1% of requests). Latency statistics cover *completed* spans
/// only; dropped/aborted/unfinished requests appear in the outcome
/// counts but would skew the blame breakdown.
/// Renders the `policy` section of the metrics dump: the list of mid-run
/// policy swaps plus per-policy-epoch attribution. Epoch boundaries are
/// the swap instants; each epoch lists the active policy per plane (for
/// planes whose policy is known from the swap stream — a plane that
/// never swapped has no name in the trace) and per-container CPU/disk
/// charge deltas over the epoch, computed from the sampled cumulative
/// series at sample resolution (a swap landing between two samples
/// attributes the straddling interval to the epoch of the earlier
/// sample).
fn write_policy(out: &mut String, m: &Metrics, end: Nanos, swaps: &[(Nanos, &str, &str, &str)]) {
    out.push_str(",\"policy\":{\"swaps\":[");
    for (i, (at, plane, from, to)) in swaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"at_ns\":{},\"plane\":{},\"from\":{},\"to\":{}}}",
            at.as_nanos(),
            quote(plane),
            quote(from),
            quote(to)
        );
    }
    out.push_str("],\"epochs\":[");
    // Current policy per plane, seeded from each plane's first swap's
    // `from` side so epoch 0 is labeled correctly.
    let mut current: BTreeMap<&str, &str> = BTreeMap::new();
    for &(_, plane, from, _) in swaps {
        current.entry(plane).or_insert(from);
    }
    // Epoch boundaries: distinct swap times (trace order is time order),
    // closed by the run end.
    let mut bounds: Vec<Nanos> = Vec::with_capacity(swaps.len() + 2);
    bounds.push(Nanos::ZERO);
    for &(at, ..) in swaps {
        if bounds.last() != Some(&at) {
            bounds.push(at);
        }
    }
    if bounds.last() != Some(&end) {
        bounds.push(end);
    }
    // Cumulative (cpu, disk) charged to a container at the last sample
    // at or before `t`.
    let sampled = |series: &ContainerSeries, t: Nanos| -> (Nanos, Nanos) {
        let mut v = (Nanos::ZERO, Nanos::ZERO);
        for p in &series.samples {
            if p.at > t {
                break;
            }
            v = (p.cpu, p.disk);
        }
        v
    };
    for (e, w) in bounds.windows(2).enumerate() {
        let (start, stop) = (w[0], w[1]);
        if e > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"start_ns\":{},\"end_ns\":{}",
            start.as_nanos(),
            stop.as_nanos()
        );
        for (plane, name) in &current {
            let _ = write!(out, ",{}:{}", quote(plane), quote(name));
        }
        out.push_str(",\"containers\":[");
        let mut first = true;
        for (&id, series) in &m.containers {
            let (cpu0, disk0) = sampled(series, start);
            let (cpu1, disk1) = sampled(series, stop);
            let (dcpu, ddisk) = (cpu1 - cpu0, disk1 - disk0);
            if dcpu.is_zero() && ddisk.is_zero() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"id\":{},\"cpu_ns\":{},\"disk_ns\":{}}}",
                id,
                dcpu.as_nanos(),
                ddisk.as_nanos()
            );
        }
        out.push_str("]}");
        // Apply every swap at this epoch's close so the next epoch
        // carries the attached policies.
        for &(at, plane, _, to) in swaps {
            if at == stop {
                current.insert(plane, to);
            }
        }
    }
    out.push_str("]}");
}

fn write_spans(out: &mut String, m: &Metrics, spans: &SpanBuffer) {
    let _ = write!(
        out,
        ",\"spans\":{{\"minted\":{},\"finished\":{},\"retained\":{},\"dropped\":{}",
        spans.minted,
        spans.finished,
        spans.ledgers.len(),
        spans.dropped,
    );
    let mut by_container: BTreeMap<u64, Vec<&simcore::span::SpanLedger>> = BTreeMap::new();
    for l in &spans.ledgers {
        by_container.entry(l.container).or_default().push(l);
    }
    out.push_str(",\"containers\":[");
    for (i, (&id, ledgers)) in by_container.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = m
            .containers
            .get(&id)
            .map(|c| c.display_name(id))
            .unwrap_or_else(|| format!("c{id}"));
        let mut outcomes = [0u64; 4];
        for l in ledgers {
            let slot = match l.outcome {
                Outcome::Completed => 0,
                Outcome::Dropped => 1,
                Outcome::Aborted => 2,
                Outcome::Unfinished => 3,
            };
            outcomes[slot] += 1;
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"name\":{},\"outcomes\":{{\"completed\":{},\"dropped\":{},\
             \"aborted\":{},\"unfinished\":{}}}",
            id,
            quote(&name),
            outcomes[0],
            outcomes[1],
            outcomes[2],
            outcomes[3],
        );
        let completed: Vec<&&simcore::span::SpanLedger> = ledgers
            .iter()
            .filter(|l| l.outcome == Outcome::Completed)
            .collect();
        let mut e2e: Vec<u64> = completed
            .iter()
            .map(|l| (l.end - l.start).as_nanos())
            .collect();
        e2e.sort_unstable();
        let p99 = nearest_rank(&e2e, 0.99);
        let _ = write!(
            out,
            ",\"e2e\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
            e2e.len(),
            nearest_rank(&e2e, 0.5),
            p99,
            nearest_rank(&e2e, 0.999),
            e2e.last().copied().unwrap_or(0),
        );
        out.push_str(",\"phases\":[");
        let mut first = true;
        for phase in Phase::ALL {
            let mut samples: Vec<u64> = completed
                .iter()
                .map(|l| l.phases[phase.index()].as_nanos())
                .collect();
            let total: u64 = samples.iter().sum();
            if total == 0 {
                continue;
            }
            samples.sort_unstable();
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"phase\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
                quote(phase.label()),
                total,
                nearest_rank(&samples, 0.5),
                nearest_rank(&samples, 0.99),
                nearest_rank(&samples, 0.999),
            );
        }
        out.push(']');
        // The blame verdict: among the slowest 1% of completed requests
        // (those at or above the e2e p99), which phase holds the largest
        // share of their time?
        let slow: Vec<&&&simcore::span::SpanLedger> = completed
            .iter()
            .filter(|l| (l.end - l.start).as_nanos() >= p99)
            .collect();
        if !slow.is_empty() && p99 > 0 {
            let mut sums = [0u64; NUM_PHASES];
            for l in &slow {
                for (s, p) in sums.iter_mut().zip(l.phases.iter()) {
                    *s += p.as_nanos();
                }
            }
            let total: u64 = sums.iter().sum();
            let (bi, bsum) = sums
                .iter()
                .copied()
                .enumerate()
                .max_by_key(|&(i, s)| (s, std::cmp::Reverse(i)))
                .unwrap_or((0, 0));
            let _ = write!(
                out,
                ",\"p99_blame\":{{\"phase\":{},\"share\":{},\"requests\":{},\"breakdown\":{{",
                quote(Phase::ALL[bi].label()),
                f6(if total > 0 {
                    bsum as f64 / total as f64
                } else {
                    0.0
                }),
                slow.len(),
            );
            let mut first = true;
            for phase in Phase::ALL {
                if sums[phase.index()] == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{}:{}", quote(phase.label()), sums[phase.index()]);
            }
            out.push_str("}}");
        }
        out.push('}');
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: u64, cpu_us: u64) -> ContainerSample {
        let mut usage = ResourceUsage::new();
        usage.charge_cpu(Nanos::from_micros(cpu_us), false);
        ContainerSample {
            container: id,
            name: String::new(),
            usage,
            subtree_cpu: Nanos::from_micros(cpu_us),
            subtree_disk: Nanos::ZERO,
            subtree_tx: Nanos::ZERO,
            cache_bytes: 0,
            runnable: 1,
            syn_queue: 0,
            effective_share: 0.5,
        }
    }

    #[test]
    fn next_due_advances_past_sample_time() {
        let mut m = Metrics::new(Nanos::from_millis(10));
        assert!(Nanos::ZERO >= m.next_due());
        m.record_sample(Nanos::from_millis(25), &[row(0, 100)]);
        assert_eq!(m.next_due(), Nanos::from_millis(30));
        assert_eq!(m.containers[&0].samples.len(), 1);
    }

    #[test]
    fn totals_copied_verbatim() {
        let mut m = Metrics::new(Nanos::from_millis(10));
        let r = row(3, 250);
        m.record_totals(
            GlobalTotals {
                charged_cpu: Nanos::from_micros(250),
                ..GlobalTotals::default()
            },
            std::slice::from_ref(&r),
        );
        assert_eq!(m.containers[&3].totals.usage, r.usage);
        assert_eq!(m.globals.charged_cpu, Nanos::from_micros(250));
    }

    #[test]
    fn dump_is_deterministic_and_balanced() {
        let build = || {
            let mut m = Metrics::new(Nanos::from_millis(10));
            m.record_sample(Nanos::from_millis(10), &[row(0, 10), row(7, 20)]);
            m.record_sample(Nanos::from_millis(20), &[row(0, 30), row(7, 40)]);
            m.record_latency(7, Nanos::from_micros(900), Nanos::from_millis(20), 0);
            m.record_totals(GlobalTotals::default(), &[row(0, 30), row(7, 40)]);
            let session = TraceSession {
                trace: simcore::trace::TraceBuffer::default(),
                metrics: m,
                spans: None,
            };
            metrics_json(&session)
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
        assert!(a.contains("\"received_share\":"));
        assert!(a.contains("\"p999_ns\":"));
        assert!(!a.contains("\"spans\":"), "span section gated on capture");
        assert!(!a.contains("\"slo\":"), "slo section gated on registration");
    }

    #[test]
    fn nearest_rank_matches_convention() {
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(nearest_rank(&v, 0.5), 500);
        assert_eq!(nearest_rank(&v, 0.99), 990);
        assert_eq!(nearest_rank(&v, 0.999), 999);
        assert_eq!(nearest_rank(&v, 1.0), 1000);
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[7], 0.999), 7);
    }

    #[test]
    fn span_section_aggregates_blame_and_balances() {
        use simcore::span::SpanLedger;
        let mut phases = [Nanos::ZERO; NUM_PHASES];
        phases[Phase::CpuRun.index()] = Nanos::from_micros(10);
        phases[Phase::DiskQueue.index()] = Nanos::from_micros(90);
        let slow = SpanLedger {
            request: 1,
            container: 7,
            start: Nanos::ZERO,
            end: Nanos::from_micros(100),
            phases,
            log: vec![(Nanos::ZERO, Phase::CpuRun)],
            outcome: Outcome::Completed,
        };
        let mut fast = slow.clone();
        fast.request = 2;
        fast.end = Nanos::from_micros(20);
        fast.phases = [Nanos::ZERO; NUM_PHASES];
        fast.phases[Phase::CpuRun.index()] = Nanos::from_micros(20);
        let mut aborted = slow.clone();
        aborted.request = 3;
        aborted.outcome = Outcome::Aborted;
        let session = TraceSession {
            trace: simcore::trace::TraceBuffer::default(),
            metrics: Metrics::new(Nanos::from_millis(10)),
            spans: Some(SpanBuffer {
                ledgers: vec![slow, fast, aborted],
                minted: 3,
                finished: 3,
                dropped: 0,
            }),
        };
        let dump = metrics_json(&session);
        assert_eq!(dump.matches('{').count(), dump.matches('}').count());
        assert!(
            dump.contains("\"spans\":{\"minted\":3,\"finished\":3,\"retained\":3,\"dropped\":0")
        );
        assert!(dump.contains(
            "\"outcomes\":{\"completed\":2,\"dropped\":0,\"aborted\":1,\"unfinished\":0}"
        ));
        // The slowest request is all disk-queue: the p99 blame names it.
        assert!(dump.contains("\"p99_blame\":{\"phase\":\"disk-queue\""));
    }
}
