//! Kernel-wide observability: trace sessions, per-container metrics
//! timelines, and exporters.
//!
//! A *session* couples two collectors:
//!
//! - the typed trace ring in [`simcore::trace`], which every subsystem
//!   (`simos`, `simnet`, `simdisk`, `sched`, `rescon`) records its decision
//!   points into, and
//! - a [`Metrics`] registry the kernel samples at a configurable
//!   virtual-time interval: per-container runnable depth, charge counters,
//!   effective share, SYN-queue occupancy, cache residency, plus
//!   request-latency histograms wired in by `httpsim`.
//!
//! Both are zero-cost when no session is active: emit sites evaluate
//! nothing beyond one thread-local flag read, and the kernel's sampling
//! hook is purely observational (it injects no events), so an instrumented
//! run replays exactly the virtual-time schedule of an uninstrumented one.
//!
//! Like the ring itself the registry is thread-local: the simulation is
//! single-threaded and the Rust test harness gives every test its own
//! thread, so concurrent sessions never interfere.
//!
//! # Examples
//!
//! ```
//! use simcore::Nanos;
//!
//! rctrace::start(rctrace::TraceConfig::default());
//! // ... run a kernel: subsystems emit trace events, the kernel records
//! // metric samples, httpsim records latencies ...
//! rctrace::record_latency(0, Nanos::from_micros(750), Nanos::from_micros(750), 0);
//! let session = rctrace::finish().expect("session was started");
//! let chrome = rctrace::chrome_trace_json(&session);
//! let metrics = rctrace::metrics_json(&session);
//! assert!(chrome.starts_with('{') && metrics.starts_with('{'));
//! assert!(rctrace::finish().is_none(), "finish is one-shot");
//! ```

mod chrome;
mod json;
pub mod metrics;

pub use chrome::{chrome_trace_json, cluster_chrome_trace_json, NODE_PID_STRIDE};
pub use metrics::{
    metrics_json, ContainerSample, ContainerSeries, ContainerTotals, CpuTotals, GlobalTotals,
    Metrics, SamplePoint, SloSpec, SloState,
};

use std::cell::{Cell, RefCell};

use simcore::span::SpanBuffer;
use simcore::trace::TraceBuffer;
use simcore::Nanos;

/// Configuration of a trace session.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Capacity of the structured trace ring; the oldest events are
    /// evicted (and counted) beyond it.
    pub ring_capacity: usize,
    /// Virtual-time interval between metric samples.
    pub sample_interval: Nanos,
    /// Record per-request causal spans (`rcspan`): phase ledgers for every
    /// request, aggregated into the metrics dump's blame breakdown and the
    /// Chrome trace's async request tracks. Off by default; purely
    /// observational either way (span-off runs are byte-identical).
    pub spans: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 1 << 20,
            sample_interval: Nanos::from_millis(10),
            spans: false,
        }
    }
}

/// Everything captured by one session: the retained trace ring and the
/// metrics registry.
#[derive(Clone, Debug)]
pub struct TraceSession {
    /// The structured trace events (most recent window, ring-bounded).
    pub trace: TraceBuffer,
    /// Sampled timelines, latency histograms, and final aggregates.
    pub metrics: Metrics,
    /// Per-request phase ledgers (`None` unless the session was started
    /// with [`TraceConfig::spans`]).
    pub spans: Option<SpanBuffer>,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SPANS: Cell<bool> = const { Cell::new(false) };
    static METRICS: RefCell<Option<Metrics>> = const { RefCell::new(None) };
}

/// Starts a session: enables the trace ring and installs a fresh metrics
/// registry. Restarting an active session discards its data.
pub fn start(cfg: TraceConfig) {
    simcore::trace::start(cfg.ring_capacity);
    if cfg.spans {
        simcore::span::start(cfg.ring_capacity);
    }
    SPANS.with(|s| s.set(cfg.spans));
    METRICS.with(|m| *m.borrow_mut() = Some(Metrics::new(cfg.sample_interval)));
    ACTIVE.with(|a| a.set(true));
}

/// Returns `true` while a session is active.
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Ends the session, returning everything captured; `None` when no
/// session is active.
pub fn finish() -> Option<TraceSession> {
    if !active() {
        return None;
    }
    ACTIVE.with(|a| a.set(false));
    let trace = simcore::trace::stop();
    let spans = if SPANS.with(|s| s.replace(false)) {
        Some(simcore::span::stop())
    } else {
        None
    };
    let metrics = METRICS.with(|m| m.borrow_mut().take())?;
    Some(TraceSession {
        trace,
        metrics,
        spans,
    })
}

/// A full observability session — rctrace metrics plus the underlying
/// simcore trace ring and span session — detached from the thread-local
/// slots by [`pause`]. Cluster drivers hold one per node and swap them
/// around each kernel step so every node records into its own session.
pub struct PausedSession {
    active: bool,
    spans: bool,
    metrics: Option<Metrics>,
    trace: simcore::trace::PausedTrace,
    span: simcore::span::PausedSpans,
}

/// Detaches the current session at all three layers (rctrace metrics,
/// trace ring, span session), leaving observability disabled until
/// [`resume`] or [`start`] is called.
pub fn pause() -> PausedSession {
    PausedSession {
        active: ACTIVE.with(|a| a.replace(false)),
        spans: SPANS.with(|s| s.get()),
        metrics: METRICS.with(|m| m.borrow_mut().take()),
        trace: simcore::trace::pause(),
        span: simcore::span::pause(),
    }
}

/// Reinstates a session captured by [`pause`], restoring all three layers
/// exactly as they were.
pub fn resume(paused: PausedSession) {
    simcore::trace::resume(paused.trace);
    simcore::span::resume(paused.span);
    METRICS.with(|m| *m.borrow_mut() = paused.metrics);
    SPANS.with(|s| s.set(paused.spans));
    ACTIVE.with(|a| a.set(paused.active));
}

/// Returns `true` if a metric sample is due at virtual time `now`.
/// One thread-local flag read when no session is active.
pub fn sample_due(now: Nanos) -> bool {
    if !active() {
        return false;
    }
    METRICS.with(|m| m.borrow().as_ref().is_some_and(|m| now >= m.next_due()))
}

/// Records one sample row per live container at virtual time `at` and
/// advances the next-due time past `at`. No-op without a session.
pub fn record_sample(at: Nanos, rows: &[ContainerSample]) {
    if !active() {
        return;
    }
    METRICS.with(|m| {
        if let Some(m) = m.borrow_mut().as_mut() {
            m.record_sample(at, rows);
        }
    });
}

/// Registers per-tenant latency objectives; each completed request is
/// checked against them online (see [`SloSpec`]). Replaces any previous
/// registration. No-op without a session.
pub fn register_slos(specs: Vec<SloSpec>) {
    if !active() {
        return;
    }
    METRICS.with(|m| {
        if let Some(m) = m.borrow_mut().as_mut() {
            m.register_slos(specs);
        }
    });
}

/// Records one completed-request latency against `container`, feeding the
/// per-container histogram and the online SLO monitors. `at` is the
/// completion instant (used to timestamp violation trace events) and
/// `request` the rcspan request id (`0` when spans are off). No-op
/// without a session.
pub fn record_latency(container: u64, latency: Nanos, at: Nanos, request: u64) {
    if !active() {
        return;
    }
    METRICS.with(|m| {
        if let Some(m) = m.borrow_mut().as_mut() {
            m.record_latency(container, latency, at, request);
        }
    });
}

/// Records one mid-run policy swap (`plane` is `"cpu"`/`"disk"`/
/// `"link"`). Feeds the `policy` section of the metrics dump: swap
/// history plus per-policy-epoch attribution. Kept separate from the
/// `PolicySwap` trace event so ring eviction cannot lose control-plane
/// history. No-op without a session.
pub fn record_policy_swap(at: Nanos, plane: &'static str, from: &'static str, to: &'static str) {
    if !active() {
        return;
    }
    METRICS.with(|m| {
        if let Some(m) = m.borrow_mut().as_mut() {
            m.policy_swaps.push((at, plane, from, to));
        }
    });
}

/// Records end-of-run aggregates (global totals plus one final row per
/// live container); the last call wins. No-op without a session.
pub fn record_totals(globals: GlobalTotals, rows: &[ContainerSample]) {
    if !active() {
        return;
    }
    METRICS.with(|m| {
        if let Some(m) = m.borrow_mut().as_mut() {
            m.record_totals(globals, rows);
        }
    });
}

/// Records end-of-run per-CPU accounting; the last call wins. No-op
/// without a session.
pub fn record_cpu_totals(cpus: &[CpuTotals]) {
    if !active() {
        return;
    }
    METRICS.with(|m| {
        if let Some(m) = m.borrow_mut().as_mut() {
            m.record_cpu_totals(cpus);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_session_is_inert() {
        assert!(!active());
        assert!(!sample_due(Nanos::from_secs(100)));
        record_latency(1, Nanos::from_micros(5), Nanos::from_micros(5), 0);
        record_sample(Nanos::ZERO, &[]);
        record_totals(GlobalTotals::default(), &[]);
        assert!(finish().is_none());
    }

    #[test]
    fn session_collects_trace_and_metrics() {
        start(TraceConfig {
            ring_capacity: 16,
            sample_interval: Nanos::from_millis(1),
            spans: false,
        });
        assert!(active());
        assert!(sample_due(Nanos::ZERO), "baseline sample due at start");
        simcore::trace::emit_at(Nanos::from_micros(3), || {
            simcore::trace::TraceEventKind::SchedPick {
                task: 1,
                slice: Nanos::from_micros(100),
            }
        });
        record_sample(Nanos::from_millis(1), &[]);
        assert!(!sample_due(Nanos::from_millis(1)));
        assert!(sample_due(Nanos::from_millis(2)));
        record_latency(9, Nanos::from_micros(42), Nanos::from_micros(50), 0);
        let s = finish().expect("active session");
        assert_eq!(s.trace.events.len(), 1);
        assert_eq!(s.metrics.containers[&9].latency.count(), 1);
        assert!(s.spans.is_none(), "spans off by default");
        assert!(!active());
        assert!(!simcore::trace::enabled(), "ring disabled after finish");
    }

    #[test]
    fn span_session_drains_ledgers_and_monitors_slos() {
        use simcore::span::{self, Outcome, Phase};
        start(TraceConfig {
            ring_capacity: 64,
            sample_interval: Nanos::from_millis(1),
            spans: true,
        });
        assert!(span::enabled());
        register_slos(vec![SloSpec {
            container: 4,
            label: "tenant".to_string(),
            quantile: 0.5,
            threshold: Nanos::from_micros(10),
        }]);
        let id = span::mint(Nanos::ZERO, 4, Phase::CpuRun);
        span::finish(id, Nanos::from_micros(20), Outcome::Completed);
        // Over threshold and past the 50% error budget: a violation.
        record_latency(4, Nanos::from_micros(20), Nanos::from_micros(20), id);
        let s = finish().expect("active session");
        assert!(!span::enabled(), "span recording disabled after finish");
        let spans = s.spans.expect("span buffer drained");
        assert_eq!(spans.ledgers.len(), 1);
        assert_eq!(spans.ledgers[0].request, id);
        assert_eq!(s.metrics.slos.len(), 1);
        assert_eq!(s.metrics.slos[0].violations, 1);
        assert!(s
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, simcore::trace::TraceEventKind::SloViolation { .. })));
    }
}
