//! Deterministic JSON-fragment formatting shared by the exporters.
//!
//! All numeric output is derived from integers so that two runs of the
//! same simulation produce byte-identical documents: durations are
//! formatted by splitting the nanosecond count, never by dividing floats.

/// Escapes `s` into a JSON string literal, including the surrounding
/// quotes.
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a nanosecond count as a decimal microsecond value with three
/// fractional digits — the unit of the Chrome trace `ts` and `dur` fields.
pub(crate) fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Formats a nanosecond count as a decimal millisecond value with six
/// fractional digits (counter-track values).
pub(crate) fn millis6(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

/// Formats an `f64` (shares, rates) with six fractional digits.
pub(crate) fn f6(v: f64) -> String {
    format!("{v:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn duration_formats_are_integer_derived() {
        assert_eq!(micros(1_234_567), "1234.567");
        assert_eq!(micros(42), "0.042");
        assert_eq!(millis6(1_234_567), "1.234567");
        assert_eq!(millis6(7), "0.000007");
    }
}
