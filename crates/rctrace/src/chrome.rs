//! Chrome trace-event exporter (loadable in Perfetto and `chrome://tracing`).
//!
//! Track layout:
//!
//! - **pid 1 "cpu"** — one `X` (complete) slice per scheduled run, derived
//!   from the [`CtxSwitch`](simcore::trace::TraceEventKind::CtxSwitch)
//!   stream: each slice spans from one switch to the next and is named
//!   after the running task, with the charged container in `args`.
//! - **pid 2 "disk"** — one `X` slice per disk request service period
//!   (`DiskStart` carries the exact service time; the disk is
//!   non-preemptive, so start + service is the completion).
//! - **pid 3 "link"** — one `X` slice per packet transmission on the
//!   finite-bandwidth link (`LinkStart` carries the exact wire time).
//!   The track (and the per-container `tx_charge_ms` counters) appears
//!   only on link-modelled runs, so linkless exports are unchanged.
//! - **pid 10+** — one process per container, ordered by container id:
//!   instants for lifecycle events, syscalls, packet drops, and LRP
//!   dispatches, plus `C` (counter) tracks sampled from the metrics
//!   timelines: cumulative CPU and disk charge (ms), runnable depth,
//!   SYN-queue occupancy, and cache residency.
//!
//! `Charge` events are deliberately *not* exported individually — the
//! counter tracks carry the same information at sample resolution without
//! drowning the viewer — but they remain available in the raw
//! [`TraceBuffer`](simcore::trace::TraceBuffer).
//!
//! **Cluster exports** ([`cluster_chrome_trace_json`]) merge one session
//! per node into a single document: each node gets its own pid namespace
//! (an offset of [`NODE_PID_STRIDE`] per node) and every track name is
//! prefixed with the node name (`"web-3 cpu"`, `"web-3 container
//! tenant-gold"`), so Perfetto groups a node's processes together and
//! the whole cluster shares one time axis. Flow-arrow and async-span ids
//! are namespaced per node so arrows never pair across machines.
//!
//! The exporter walks the retained ring and the sample series in order and
//! formats every number from integers, so the document is byte-identical
//! across runs of the same simulation.

use std::collections::{BTreeMap, BTreeSet};

use simcore::trace::{TraceEventKind, NO_CONTAINER};
use simcore::Nanos;

use crate::json::{micros, millis6, quote};
use crate::TraceSession;

const CPU_PID: u32 = 1;
const DISK_PID: u32 = 2;
const LINK_PID: u32 = 3;
const CONTAINER_PID_BASE: u32 = 10;
/// Per-CPU track pids on multiprocessor runs. The base is far above the
/// container pid range, which grows from [`CONTAINER_PID_BASE`] with one
/// pid per container (per-connection containers can make that large).
const CPU_TRACK_BASE: u32 = 1_000_000;
/// Pid-namespace stride between nodes in a cluster export. Leaves room
/// for the previous node's per-CPU track range above [`CPU_TRACK_BASE`].
pub const NODE_PID_STRIDE: u32 = 10_000_000;
/// Async-span / flow id namespace stride between nodes: per-node request
/// and flow ids stay well below this, so ids never collide across nodes.
const NODE_ID_STRIDE: u64 = 1 << 40;

/// The container a trace event is attributed to, if any.
fn event_container(kind: &TraceEventKind) -> Option<u64> {
    match *kind {
        TraceEventKind::CtxSwitch { container, .. }
        | TraceEventKind::SyscallEnter { container, .. }
        | TraceEventKind::PacketDemux { container, .. }
        | TraceEventKind::PacketDrop { container, .. }
        | TraceEventKind::LrpDispatch { container, .. }
        | TraceEventKind::DiskQueue { container, .. }
        | TraceEventKind::DiskStart { container, .. }
        | TraceEventKind::DiskComplete { container, .. }
        | TraceEventKind::CacheHit { container, .. }
        | TraceEventKind::CacheEvict { container, .. }
        | TraceEventKind::ContainerCreate { container, .. }
        | TraceEventKind::ContainerDestroy { container }
        | TraceEventKind::Migrate { container, .. }
        | TraceEventKind::Charge { container, .. }
        | TraceEventKind::FaultPacketDrop { container, .. }
        | TraceEventKind::FaultPacketCorrupt { container, .. }
        | TraceEventKind::FaultPacketDelay { container, .. }
        | TraceEventKind::FaultDiskError { container, .. }
        | TraceEventKind::FaultDiskSpike { container, .. }
        | TraceEventKind::LinkQueue { container, .. }
        | TraceEventKind::LinkStart { container, .. }
        | TraceEventKind::LinkDrop { container, .. }
        | TraceEventKind::MemPressure { container, .. }
        | TraceEventKind::MemRefused { container, .. }
        | TraceEventKind::SloViolation { container, .. } => Some(container),
        // Reclaim and OOM attribute to the container that lost memory.
        TraceEventKind::Reclaim { victim, .. } | TraceEventKind::OomKill { victim, .. } => {
            Some(victim)
        }
        TraceEventKind::ThreadState { .. }
        | TraceEventKind::SyscallExit { .. }
        | TraceEventKind::CacheMiss { .. }
        | TraceEventKind::SchedPick { .. }
        | TraceEventKind::FaultClientAbandon { .. }
        | TraceEventKind::FaultClientMalformed { .. }
        | TraceEventKind::FaultClientSlow { .. }
        | TraceEventKind::PolicySwap { .. } => None,
    }
}

fn meta_name(pid: u32, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":{}}}}}",
        quote(name)
    )
}

fn instant(pid: u32, ts_ns: u64, cat: &str, name: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"name\":{},\"cat\":{},\"pid\":{pid},\"tid\":0,\"ts\":{},\"s\":\"p\"}}",
        quote(name),
        quote(cat),
        micros(ts_ns)
    )
}

fn counter(pid: u32, ts_ns: u64, name: &str, value: &str) -> String {
    format!(
        "{{\"ph\":\"C\",\"name\":{},\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"v\":{value}}}}}",
        quote(name),
        micros(ts_ns)
    )
}

/// Emits one session's events into `evs`. `base` offsets every pid (0 for
/// a single-session export), `label` prefixes every track name (the node
/// name in a cluster export), and `id_base` namespaces the flow-arrow and
/// async-span ids so merged documents never pair arrows across sessions.
fn emit_session(
    session: &TraceSession,
    base: u32,
    label: Option<&str>,
    id_base: u64,
    evs: &mut Vec<String>,
) {
    let cpu_pid0 = base + CPU_PID;
    let disk_pid = base + DISK_PID;
    let link_pid = base + LINK_PID;
    let track = |name: &str| -> String {
        match label {
            Some(l) => format!("{l} {name}"),
            None => name.to_string(),
        }
    };
    // One Chrome "process" per container, ordered by container id; the
    // union of containers seen in the trace ring and in the metrics.
    let mut ids: BTreeSet<u64> = session.metrics.containers.keys().copied().collect();
    for ev in &session.trace.events {
        if let Some(c) = event_container(&ev.kind) {
            if c != NO_CONTAINER {
                ids.insert(c);
            }
        }
    }
    let pid_of: BTreeMap<u64, u32> = ids
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, base + CONTAINER_PID_BASE + i as u32))
        .collect();
    let name_of = |c: u64| -> String {
        session
            .metrics
            .containers
            .get(&c)
            .map(|e| e.display_name(c))
            .unwrap_or_else(|| format!("c{c}"))
    };
    // A container's instants land on its own track; unattributed events
    // land on the CPU track.
    let pid_for = |c: u64| -> u32 { pid_of.get(&c).copied().unwrap_or(cpu_pid0) };

    let end_ns = session
        .metrics
        .globals
        .end
        .max(
            session
                .trace
                .events
                .last()
                .map(|e| e.at)
                .unwrap_or(Nanos::ZERO),
        )
        .as_nanos();

    // Multiprocessor detection: any event on a CPU other than 0, or a
    // multi-entry per-CPU totals table. Uniprocessor sessions keep the
    // legacy single "cpu" track (pid 1) byte-for-byte.
    let mut ncpus: u32 = session.metrics.per_cpu.len() as u32;
    for ev in &session.trace.events {
        let c = match ev.kind {
            TraceEventKind::CtxSwitch { cpu, .. } => cpu,
            TraceEventKind::Migrate {
                from_cpu, to_cpu, ..
            } => from_cpu.max(to_cpu),
            _ => 0,
        };
        ncpus = ncpus.max(c + 1);
    }
    let multi = ncpus > 1;
    let cpu_pid = |cpu: u32| -> u32 {
        if multi {
            base + CPU_TRACK_BASE + cpu
        } else {
            cpu_pid0
        }
    };

    if multi {
        for cpu in 0..ncpus {
            evs.push(meta_name(cpu_pid(cpu), &track(&format!("cpu{cpu}"))));
        }
        // Unattributed instants still land on pid 1.
        evs.push(meta_name(cpu_pid0, &track("unattributed")));
    } else {
        evs.push(meta_name(cpu_pid0, &track("cpu")));
    }
    evs.push(meta_name(disk_pid, &track("disk")));
    // The link track appears only when the run modelled a finite link.
    let link_present = session.metrics.globals.link_configured
        || session
            .trace
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::LinkStart { .. }));
    if link_present {
        evs.push(meta_name(link_pid, &track("link")));
    }
    // Per-class memory counter tracks appear only on simmem runs, so
    // memory-unlimited exports are unchanged.
    let mem_present = session.metrics.globals.mem_configured;
    for (&c, &pid) in &pid_of {
        evs.push(meta_name(pid, &track(&format!("container {}", name_of(c)))));
    }

    // Scheduled-run slices on the per-CPU tracks plus per-event instants.
    // (start ns, task, container) per CPU; on a uniprocessor this map
    // holds a single entry, reproducing the old single-slot tracker.
    let mut open: BTreeMap<u32, (u64, u32, u64)> = BTreeMap::new();
    let close_slice =
        |evs: &mut Vec<String>, cpu: u32, start: u64, end: u64, task: u32, cont: u64| {
            let dur = end.saturating_sub(start);
            evs.push(format!(
                "{{\"ph\":\"X\",\"name\":{},\"cat\":\"sched\",\"pid\":{},\"tid\":0,\
                 \"ts\":{},\"dur\":{},\"args\":{{\"container\":{}}}}}",
                quote(&format!("task {task}")),
                cpu_pid(cpu),
                micros(start),
                micros(dur),
                quote(&name_of(cont)),
            ));
        };
    // Chrome flow-event ids tie each migration's start/finish arrow pair.
    let mut flow_id: u64 = id_base;
    for ev in &session.trace.events {
        let at = ev.at.as_nanos();
        match ev.kind {
            TraceEventKind::CtxSwitch {
                to, container, cpu, ..
            } => {
                if let Some((start, task, cont)) = open.remove(&cpu) {
                    close_slice(evs, cpu, start, at, task, cont);
                }
                open.insert(cpu, (at, to, container));
            }
            TraceEventKind::Migrate {
                task,
                from_cpu,
                to_cpu,
                ..
            } => {
                flow_id += 1;
                let name = quote(&format!("migrate t{task}"));
                evs.push(format!(
                    "{{\"ph\":\"s\",\"id\":{flow_id},\"name\":{name},\"cat\":\"migrate\",\
                     \"pid\":{},\"tid\":0,\"ts\":{}}}",
                    cpu_pid(from_cpu),
                    micros(at),
                ));
                evs.push(format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow_id},\"name\":{name},\
                     \"cat\":\"migrate\",\"pid\":{},\"tid\":0,\"ts\":{}}}",
                    cpu_pid(to_cpu),
                    micros(at),
                ));
                evs.push(instant(
                    cpu_pid(to_cpu),
                    at,
                    "migrate",
                    &format!("t{task} \u{2190} cpu{from_cpu}"),
                ));
            }
            TraceEventKind::DiskStart {
                req,
                file,
                container,
                service,
            } => {
                evs.push(format!(
                    "{{\"ph\":\"X\",\"name\":{},\"cat\":\"disk\",\"pid\":{disk_pid},\"tid\":0,\
                     \"ts\":{},\"dur\":{},\"args\":{{\"req\":{req},\"container\":{}}}}}",
                    quote(&format!("file {file}")),
                    micros(at),
                    micros(service.as_nanos()),
                    quote(&name_of(container)),
                ));
            }
            TraceEventKind::LinkStart {
                port,
                bytes,
                container,
                wire,
            } => {
                evs.push(format!(
                    "{{\"ph\":\"X\",\"name\":{},\"cat\":\"link\",\"pid\":{link_pid},\"tid\":0,\
                     \"ts\":{},\"dur\":{},\"args\":{{\"bytes\":{bytes},\"container\":{}}}}}",
                    quote(&format!("tx :{port}")),
                    micros(at),
                    micros(wire.as_nanos()),
                    quote(&name_of(container)),
                ));
            }
            TraceEventKind::LinkDrop { port, container } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "link",
                    &format!("link drop :{port}"),
                ));
            }
            TraceEventKind::ContainerCreate { container, .. } => {
                evs.push(instant(pid_for(container), at, "lifecycle", "create"));
            }
            TraceEventKind::ContainerDestroy { container } => {
                evs.push(instant(pid_for(container), at, "lifecycle", "destroy"));
            }
            TraceEventKind::PacketDrop { reason, container } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "net",
                    &format!("drop: {reason}"),
                ));
            }
            TraceEventKind::SyscallEnter {
                name, container, ..
            } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "sys",
                    &format!("sys {name}"),
                ));
            }
            TraceEventKind::LrpDispatch { task, container } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "net",
                    &format!("lrp task {task}"),
                ));
            }
            TraceEventKind::FaultPacketDrop { port, container } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "fault",
                    &format!("fault: pkt-drop :{port}"),
                ));
            }
            TraceEventKind::FaultPacketCorrupt { port, container } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "fault",
                    &format!("fault: pkt-corrupt :{port}"),
                ));
            }
            TraceEventKind::FaultPacketDelay {
                port,
                delay,
                container,
            } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "fault",
                    &format!("fault: pkt-delay :{port} +{}us", delay.as_micros()),
                ));
            }
            TraceEventKind::FaultDiskError { file, container } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "fault",
                    &format!("fault: disk-error file {file}"),
                ));
            }
            TraceEventKind::FaultDiskSpike {
                file,
                extra,
                container,
            } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "fault",
                    &format!("fault: disk-spike file {file} +{}us", extra.as_micros()),
                ));
            }
            TraceEventKind::FaultClientAbandon { client } => {
                evs.push(instant(
                    cpu_pid0,
                    at,
                    "fault",
                    &format!("fault: client {client} abandon"),
                ));
            }
            TraceEventKind::FaultClientMalformed { client } => {
                evs.push(instant(
                    cpu_pid0,
                    at,
                    "fault",
                    &format!("fault: client {client} malformed"),
                ));
            }
            TraceEventKind::FaultClientSlow { client, delay } => {
                evs.push(instant(
                    cpu_pid0,
                    at,
                    "fault",
                    &format!("fault: client {client} slow +{}us", delay.as_micros()),
                ));
            }
            TraceEventKind::MemPressure {
                container,
                used,
                limit,
            } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "mem",
                    &format!("mem pressure {used}/{limit}B"),
                ));
            }
            TraceEventKind::Reclaim {
                victim,
                file,
                bytes,
                ..
            } => {
                evs.push(instant(
                    pid_for(victim),
                    at,
                    "mem",
                    &format!("reclaim file {file} ({bytes}B)"),
                ));
            }
            TraceEventKind::OomKill { victim, bytes, .. } => {
                evs.push(instant(
                    pid_for(victim),
                    at,
                    "mem",
                    &format!("oom kill ({bytes}B)"),
                ));
            }
            TraceEventKind::MemRefused {
                container,
                refusing,
                wanted,
                ..
            } => {
                let by = if refusing == NO_CONTAINER {
                    "budget".to_string()
                } else {
                    format!("c{refusing}")
                };
                evs.push(instant(
                    pid_for(container),
                    at,
                    "mem",
                    &format!("mem refused {wanted}B ({by})"),
                ));
            }
            TraceEventKind::SloViolation {
                container,
                request,
                latency,
                threshold,
            } => {
                evs.push(instant(
                    pid_for(container),
                    at,
                    "slo",
                    &format!(
                        "SLO violation req {request}: {}us > {}us",
                        latency.as_micros(),
                        threshold.as_micros()
                    ),
                ));
            }
            TraceEventKind::PolicySwap { plane, from, to } => {
                // Pin the instant to the plane's own device/CPU track so
                // the swap is visible where its effect is.
                let pid = match plane {
                    "disk" => disk_pid,
                    "link" => link_pid,
                    _ => cpu_pid0,
                };
                evs.push(instant(
                    pid,
                    at,
                    "policy",
                    &format!("{plane} policy {from} -> {to}"),
                ));
            }
            _ => {}
        }
    }
    for (cpu, (start, task, cont)) in open {
        close_slice(evs, cpu, start, end_ns.max(start), task, cont);
    }

    // Counter tracks from the sampled metrics timelines.
    for (&c, series) in &session.metrics.containers {
        let pid = pid_of[&c];
        for p in &series.samples {
            let ts = p.at.as_nanos();
            evs.push(counter(
                pid,
                ts,
                "cpu_charge_ms",
                &millis6(p.cpu.as_nanos()),
            ));
            evs.push(counter(
                pid,
                ts,
                "disk_charge_ms",
                &millis6(p.disk.as_nanos()),
            ));
            if link_present {
                evs.push(counter(
                    pid,
                    ts,
                    "tx_charge_ms",
                    &millis6(p.tx_time.as_nanos()),
                ));
            }
            if mem_present {
                evs.push(counter(pid, ts, "mem_bytes", &p.mem_bytes.to_string()));
                for class in rescon::MemClass::ALL {
                    evs.push(counter(
                        pid,
                        ts,
                        &format!("mem_{}_bytes", class.label()),
                        &p.mem_by_class[class.index()].to_string(),
                    ));
                }
            }
            evs.push(counter(pid, ts, "runnable", &p.runnable.to_string()));
            evs.push(counter(pid, ts, "syn_queue", &p.syn_queue.to_string()));
            evs.push(counter(pid, ts, "cache_bytes", &p.cache_bytes.to_string()));
        }
    }

    // Per-request async tracks (rcspan): one nestable-async span per
    // ledger on its container's process, with one nested slice per phase
    // segment. Disk-service and wire segments additionally carry flow
    // arrows onto the device tracks, so a request's journey through the
    // disk and the link can be followed visually in Perfetto.
    if let Some(spans) = &session.spans {
        for l in &spans.ledgers {
            let pid = pid_for(l.container);
            let rid = id_base + l.request;
            let name = quote(&format!("req {}", l.request));
            evs.push(format!(
                "{{\"ph\":\"b\",\"id\":{rid},\"name\":{name},\"cat\":\"request\",\
                 \"pid\":{pid},\"tid\":0,\"ts\":{}}}",
                micros(l.start.as_nanos()),
            ));
            for (i, &(seg_start, phase)) in l.log.iter().enumerate() {
                let seg_end = l.log.get(i + 1).map(|s| s.0).unwrap_or(l.end);
                if seg_end <= seg_start {
                    continue;
                }
                let pname = quote(phase.label());
                evs.push(format!(
                    "{{\"ph\":\"b\",\"id\":{rid},\"name\":{pname},\"cat\":\"request\",\
                     \"pid\":{pid},\"tid\":0,\"ts\":{}}}",
                    micros(seg_start.as_nanos()),
                ));
                evs.push(format!(
                    "{{\"ph\":\"e\",\"id\":{rid},\"name\":{pname},\"cat\":\"request\",\
                     \"pid\":{pid},\"tid\":0,\"ts\":{}}}",
                    micros(seg_end.as_nanos()),
                ));
                let device_pid = match phase {
                    simcore::span::Phase::DiskService => Some(disk_pid),
                    simcore::span::Phase::Wire if link_present => Some(link_pid),
                    _ => None,
                };
                if let Some(dev) = device_pid {
                    flow_id += 1;
                    let fname = quote(&format!("req {} {}", l.request, phase.label()));
                    evs.push(format!(
                        "{{\"ph\":\"s\",\"id\":{flow_id},\"name\":{fname},\"cat\":\"request\",\
                         \"pid\":{pid},\"tid\":0,\"ts\":{}}}",
                        micros(seg_start.as_nanos()),
                    ));
                    evs.push(format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{flow_id},\"name\":{fname},\
                         \"cat\":\"request\",\"pid\":{dev},\"tid\":0,\"ts\":{}}}",
                        micros(seg_start.as_nanos()),
                    ));
                }
            }
            evs.push(format!(
                "{{\"ph\":\"e\",\"id\":{rid},\"name\":{name},\"cat\":\"request\",\
                 \"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"outcome\":{}}}}}",
                micros(l.end.as_nanos()),
                quote(l.outcome.label()),
            ));
        }
    }
}

/// Joins rendered events into the final trace document.
fn wrap(evs: Vec<String>) -> String {
    let mut out = String::with_capacity(64 + evs.iter().map(|e| e.len() + 1).sum::<usize>());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in evs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push_str("]}");
    out
}

/// Renders the session as Chrome trace-event JSON.
pub fn chrome_trace_json(session: &TraceSession) -> String {
    let mut evs: Vec<String> = Vec::new();
    emit_session(session, 0, None, 0, &mut evs);
    wrap(evs)
}

/// Renders one `(node name, session)` pair per node as a single merged
/// Chrome trace document: a shared time axis, one pid namespace per node
/// ([`NODE_PID_STRIDE`] apart), and node-name-prefixed track names so
/// Perfetto groups each node's cpu/disk/link/container tracks together.
pub fn cluster_chrome_trace_json(sessions: &[(String, TraceSession)]) -> String {
    let mut evs: Vec<String> = Vec::new();
    for (i, (name, session)) in sessions.iter().enumerate() {
        emit_session(
            session,
            i as u32 * NODE_PID_STRIDE,
            Some(name),
            i as u64 * NODE_ID_STRIDE,
            &mut evs,
        );
    }
    wrap(evs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{ContainerSample, GlobalTotals, Metrics};
    use simcore::trace::{TraceBuffer, TraceEvent};

    fn session() -> TraceSession {
        let mut trace = TraceBuffer::default();
        let push = |t: &mut TraceBuffer, at: u64, kind: TraceEventKind| {
            t.events.push(TraceEvent {
                at: Nanos::from_micros(at),
                kind,
            });
            t.emitted += 1;
        };
        push(
            &mut trace,
            1,
            TraceEventKind::ContainerCreate {
                container: 7,
                parent: 0,
            },
        );
        push(
            &mut trace,
            2,
            TraceEventKind::CtxSwitch {
                from: u32::MAX,
                to: 3,
                container: 7,
                cpu: 0,
            },
        );
        push(
            &mut trace,
            5,
            TraceEventKind::CtxSwitch {
                from: 3,
                to: 4,
                container: 0,
                cpu: 0,
            },
        );
        push(
            &mut trace,
            6,
            TraceEventKind::DiskStart {
                req: 0,
                file: 42,
                container: 7,
                service: Nanos::from_micros(100),
            },
        );
        push(
            &mut trace,
            7,
            TraceEventKind::PacketDrop {
                reason: "queue-full",
                container: 7,
            },
        );
        let mut metrics = Metrics::new(Nanos::from_millis(1));
        let mut usage = rescon::ResourceUsage::new();
        usage.charge_cpu(Nanos::from_micros(3), false);
        let row = ContainerSample {
            container: 7,
            name: "web".to_string(),
            usage,
            subtree_cpu: Nanos::from_micros(3),
            subtree_disk: Nanos::ZERO,
            subtree_tx: Nanos::ZERO,
            cache_bytes: 4096,
            runnable: 2,
            syn_queue: 1,
            effective_share: 0.25,
        };
        metrics.record_sample(Nanos::from_millis(1), std::slice::from_ref(&row));
        metrics.record_totals(
            GlobalTotals {
                end: Nanos::from_millis(2),
                ..GlobalTotals::default()
            },
            &[row],
        );
        TraceSession {
            trace,
            metrics,
            spans: None,
        }
    }

    #[test]
    fn tracks_cover_containers_and_devices() {
        let json = chrome_trace_json(&session());
        assert!(json.contains("\"name\":\"cpu\""));
        assert!(json.contains("\"name\":\"disk\""));
        assert!(json.contains("container web"));
        assert!(json.contains("\"cpu_charge_ms\""));
        assert!(json.contains("\"disk_charge_ms\""));
        assert!(json.contains("drop: queue-full"));
        // Slices closed: one per context switch.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_json(&session());
        let b = chrome_trace_json(&session());
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn request_spans_export_async_slices_and_flow_arrows() {
        use simcore::span::{Outcome, Phase, SpanBuffer, SpanLedger, NUM_PHASES};
        let mut s = session();
        let mut phases = [Nanos::ZERO; NUM_PHASES];
        phases[Phase::CpuRun.index()] = Nanos::from_micros(4);
        phases[Phase::DiskService.index()] = Nanos::from_micros(6);
        s.spans = Some(SpanBuffer {
            ledgers: vec![SpanLedger {
                request: 1,
                container: 7,
                start: Nanos::from_micros(10),
                end: Nanos::from_micros(20),
                phases,
                log: vec![
                    (Nanos::from_micros(10), Phase::CpuRun),
                    (Nanos::from_micros(14), Phase::DiskService),
                ],
                outcome: Outcome::Completed,
            }],
            minted: 1,
            finished: 1,
            dropped: 0,
        });
        let json = chrome_trace_json(&s);
        assert!(json.contains("\"ph\":\"b\",\"id\":1,\"name\":\"req 1\""));
        assert!(json.contains("\"name\":\"cpu-run\""));
        assert!(json.contains("\"name\":\"disk-service\""));
        assert!(json.contains("\"outcome\":\"completed\""));
        // The disk-service segment carries a flow arrow onto the disk
        // track.
        assert!(json.contains("\"name\":\"req 1 disk-service\""));
        assert!(json.contains(&format!("\"pid\":{DISK_PID},\"tid\":0")));
        let again = chrome_trace_json(&s);
        assert_eq!(json, again);
    }

    #[test]
    fn slo_violations_export_instants() {
        let mut s = session();
        s.trace.events.push(TraceEvent {
            at: Nanos::from_micros(30),
            kind: TraceEventKind::SloViolation {
                container: 7,
                request: 5,
                latency: Nanos::from_micros(900),
                threshold: Nanos::from_micros(500),
            },
        });
        s.trace.emitted += 1;
        let json = chrome_trace_json(&s);
        assert!(json.contains("SLO violation req 5: 900us > 500us"));
    }

    #[test]
    fn multi_cpu_sessions_get_per_cpu_tracks_and_migration_arrows() {
        let mut s = session();
        let push = |t: &mut TraceBuffer, at: u64, kind: TraceEventKind| {
            t.events.push(TraceEvent {
                at: Nanos::from_micros(at),
                kind,
            });
            t.emitted += 1;
        };
        push(
            &mut s.trace,
            8,
            TraceEventKind::CtxSwitch {
                from: u32::MAX,
                to: 9,
                container: 7,
                cpu: 1,
            },
        );
        push(
            &mut s.trace,
            9,
            TraceEventKind::Migrate {
                task: 3,
                from_cpu: 0,
                to_cpu: 1,
                container: 7,
            },
        );
        let json = chrome_trace_json(&s);
        assert!(json.contains("\"name\":\"cpu0\""));
        assert!(json.contains("\"name\":\"cpu1\""));
        assert!(!json.contains("\"name\":\"cpu\","), "legacy track absent");
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("migrate t3"));
        // Two slices on cpu0 (closed by the switch chain + end), one on
        // cpu1, one disk slice.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        let a = chrome_trace_json(&s);
        assert_eq!(a, json);
    }

    #[test]
    fn cluster_export_namespaces_pids_and_prefixes_tracks() {
        let sessions = vec![
            ("web-0".to_string(), session()),
            ("web-1".to_string(), session()),
        ];
        let json = cluster_chrome_trace_json(&sessions);
        // Node-prefixed track names for both nodes.
        assert!(json.contains("\"name\":\"web-0 cpu\""));
        assert!(json.contains("\"name\":\"web-1 cpu\""));
        assert!(json.contains("\"name\":\"web-0 disk\""));
        assert!(json.contains("\"name\":\"web-1 container web\""));
        // Node 1's pids live one stride up.
        assert!(json.contains(&format!("\"pid\":{}", NODE_PID_STRIDE + CPU_PID)));
        assert!(json.contains(&format!("\"pid\":{}", NODE_PID_STRIDE + DISK_PID)));
        // Well-formed and deterministic.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json, cluster_chrome_trace_json(&sessions));
    }

    #[test]
    fn cluster_export_of_one_session_matches_single_shape() {
        // The single-session path is the cluster path with base 0 and no
        // label: same event count, only the track names gain the prefix.
        let single = chrome_trace_json(&session());
        let cluster = cluster_chrome_trace_json(&[("n".to_string(), session())]);
        assert_eq!(
            single.matches("\"ph\":").count(),
            cluster.matches("\"ph\":").count()
        );
    }
}
