//! Cross-machine share balancing: the cluster-level analogue of the SMP
//! lag-ranked balancer.
//!
//! A tenant's resource container hierarchy spans machines *logically*:
//! one container per node, all named the same. Per-node fixed shares
//! divide each node locally, so with skewed placement or skewed traffic a
//! tenant's *global* CPU fraction drifts off target. [`GlobalShare`]
//! closes the loop: each epoch it measures every tenant's charge growth
//! across all nodes, compares the global fraction against the target, and
//! nudges the per-node weights multiplicatively
//! (`w *= 1 + gain·(target − measured)`), renormalizing per node and
//! actuating through `ContainerTable::set_attrs` — the same
//! observe-then-re-parameterize loop as C-Balancer's
//! profile-then-rebalance, expressed over resource-container attributes.

use std::collections::HashMap;

use rescon::SchedPolicy;
use simcore::Nanos;

use crate::world::{NodeId, World};

/// One tenant's balancing state.
#[derive(Clone, Debug)]
pub struct TenantShare {
    /// The per-node container name (e.g. `"tenant-gold"`).
    pub container: String,
    /// Target global CPU fraction in `(0, 1)`.
    pub target: f64,
}

/// The periodic cross-node share balancer.
pub struct GlobalShare {
    tenants: Vec<TenantShare>,
    /// Proportional gain on the multiplicative weight update.
    gain: f64,
    /// Per-`(tenant, node)` weight, seeded from the target.
    weights: HashMap<(usize, u32), f64>,
    /// Per-`(tenant, node)` subtree CPU at the previous epoch.
    prev: HashMap<(usize, u32), Nanos>,
    /// Most recent measured global fraction per tenant.
    measured: Vec<f64>,
}

/// Weight clamp: no tenant's per-node weight collapses to zero or
/// starves the others entirely.
const MIN_W: f64 = 0.02;
const MAX_W: f64 = 50.0;
/// Per-node share headroom left for non-tenant (root/system) work.
const HEADROOM: f64 = 0.95;

impl GlobalShare {
    /// A balancer for `tenants` with proportional gain `gain`
    /// (0.5–2.0 converges in a handful of epochs; higher oscillates).
    pub fn new(tenants: Vec<TenantShare>, gain: f64) -> Self {
        let measured = vec![0.0; tenants.len()];
        GlobalShare {
            tenants,
            gain,
            weights: HashMap::new(),
            prev: HashMap::new(),
            measured,
        }
    }

    /// The most recent epoch's measured global CPU fraction per tenant
    /// (zeros before the first [`GlobalShare::rebalance`]).
    pub fn measured(&self) -> &[f64] {
        &self.measured
    }

    /// The tenant targets, index-aligned with [`GlobalShare::measured`].
    pub fn targets(&self) -> Vec<f64> {
        self.tenants.iter().map(|t| t.target).collect()
    }

    /// Measurement half of an epoch: per-tenant charge growth since the
    /// last call, folded into a global CPU fraction per tenant. Updates
    /// the internal snapshots and [`GlobalShare::measured`] without
    /// touching any weight — the observation arm for no-rebalance
    /// (drift) baselines.
    pub fn measure(&mut self, world: &World) -> Vec<f64> {
        let nodes = world.len() as u32;
        let mut delta: Vec<Vec<Nanos>> = vec![Vec::new(); self.tenants.len()];
        for (t, tenant) in self.tenants.iter().enumerate() {
            for n in 0..nodes {
                let k = world.kernel(NodeId(n));
                let cpu = k
                    .containers
                    .find_by_name(&tenant.container)
                    .and_then(|id| k.containers.subtree_cpu(id).ok())
                    .unwrap_or(Nanos::ZERO);
                let prev = self.prev.insert((t, n), cpu).unwrap_or(Nanos::ZERO);
                delta[t].push(cpu.saturating_sub(prev));
            }
        }
        let total: f64 = delta
            .iter()
            .flat_map(|d| d.iter())
            .map(|d| d.as_secs_f64())
            .sum();
        for (t, _) in self.tenants.iter().enumerate() {
            let mine: f64 = delta[t].iter().map(|d| d.as_secs_f64()).sum();
            self.measured[t] = if total > 0.0 { mine / total } else { 0.0 };
        }
        self.measured.clone()
    }

    /// One epoch: measure per-tenant charge growth since the last call,
    /// update per-node weights towards the global targets, and actuate
    /// the resulting fixed shares on every node hosting the tenant.
    /// Returns the measured global fractions, index-aligned with the
    /// tenants.
    pub fn rebalance(&mut self, world: &mut World) -> Vec<f64> {
        let nodes = world.len() as u32;
        let measured = self.measure(world);
        // Control: one multiplicative nudge per tenant from its global
        // error, applied to every node where the tenant runs.
        for (t, tenant) in self.tenants.iter().enumerate() {
            let frac = measured[t];
            if frac <= 0.0 && measured.iter().all(|&m| m <= 0.0) {
                continue;
            }
            let err = tenant.target - frac;
            for n in 0..nodes {
                let w = self
                    .weights
                    .entry((t, n))
                    .or_insert(tenant.target.max(MIN_W));
                *w = (*w * (1.0 + self.gain * err)).clamp(MIN_W, MAX_W);
            }
        }
        // 3. Actuate: renormalize per node over the tenants present there
        // and install the fixed shares.
        for n in 0..nodes {
            let k = world.kernel_mut(NodeId(n));
            let present: Vec<(usize, rescon::ContainerId)> = self
                .tenants
                .iter()
                .enumerate()
                .filter_map(|(t, tenant)| {
                    k.containers
                        .find_by_name(&tenant.container)
                        .map(|id| (t, id))
                })
                .collect();
            let sum: f64 = present
                .iter()
                .map(|&(t, _)| self.weights.get(&(t, n)).copied().unwrap_or(MIN_W))
                .sum();
            if sum <= 0.0 {
                continue;
            }
            // Install decreases before increases: the new shares sum to
            // at most the headroom, but an increase applied while another
            // tenant still holds its old (larger) share could transiently
            // overcommit the node and be rejected.
            let mut planned: Vec<(rescon::ContainerId, f64, f64)> = present
                .iter()
                .map(|&(t, id)| {
                    let w = self.weights.get(&(t, n)).copied().unwrap_or(MIN_W);
                    let share = (w / sum * HEADROOM).clamp(0.01, HEADROOM);
                    let old = match k.containers.attrs(id) {
                        Ok(a) => match a.policy {
                            SchedPolicy::FixedShare { share } => share,
                            _ => 0.0,
                        },
                        Err(_) => 0.0,
                    };
                    (id, share, share - old)
                })
                .collect();
            planned.sort_by(|a, b| a.2.total_cmp(&b.2));
            for &(id, share, _) in &planned {
                let Ok(attrs) = k.containers.attrs(id) else {
                    continue;
                };
                let mut attrs = attrs.clone();
                attrs.policy = SchedPolicy::FixedShare { share };
                let _ = k.containers.set_attrs(id, attrs);
            }
        }
        self.measured.clone()
    }
}
