//! The cluster world: N kernels plus the frontend, advanced in
//! barrier-synchronous conservative rounds against a shared horizon.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simcore::Nanos;
use simnet::{CidrFilter, IpAddr, Packet};
use simos::{Kernel, KernelConfig, NullWorld};

use crate::frontend::Frontend;
use crate::link::{Lane, LaneSpec};

/// Identifies a cluster node. Kernel nodes are numbered densely from 0;
/// the front-end load balancer is [`FRONTEND`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// The front-end load-balancer node's id.
pub const FRONTEND: NodeId = NodeId(u32::MAX);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == FRONTEND {
            write!(f, "frontend")
        } else {
            write!(f, "node{}", self.0)
        }
    }
}

/// Static description of one kernel node: a name, the full per-node
/// kernel configuration (reused wholesale from single-node runs), and the
/// foreign address prefixes whose worlds attach at this node.
pub struct NodeSpec {
    /// Display name (trace track group, dumps).
    pub name: String,
    /// The node's kernel configuration.
    pub kernel: KernelConfig,
    /// Foreign (client-side) prefixes owned by this node: packets sourced
    /// from these addresses route *to* it, and replies *to* such
    /// addresses egress *from* other nodes. Backends typically own
    /// nothing — the frontend owns the client space.
    pub owns: Vec<CidrFilter>,
}

impl NodeSpec {
    /// A node with the given name and kernel config, owning no foreign
    /// prefixes.
    pub fn new(name: impl Into<String>, kernel: KernelConfig) -> Self {
        NodeSpec {
            name: name.into(),
            kernel,
            owns: Vec::new(),
        }
    }

    /// Declares a foreign prefix owned by this node (builder style).
    pub fn owning(mut self, filter: CidrFilter) -> Self {
        self.owns.push(filter);
        self
    }
}

/// One kernel node at runtime.
pub struct Node {
    /// Display name.
    pub name: String,
    /// The node's kernel (public: scenarios spawn processes, read usage).
    pub kernel: Kernel,
    /// The node-local world (defaults to [`NullWorld`]; all foreign
    /// traffic is captured by the egress filter instead).
    world: Box<dyn simos::World>,
    owns: Vec<CidrFilter>,
    /// The node's detached observability session between steps.
    session: Option<rctrace::PausedSession>,
}

/// The cluster: kernel nodes, the frontend, and the lanes joining them,
/// advanced conservatively in rounds of the minimum lane latency.
pub struct World {
    nodes: Vec<Node>,
    /// The front-end load-balancer node.
    pub frontend: Frontend,
    /// Directed lanes keyed by `(src, dst)` raw node ids (the frontend is
    /// `u32::MAX`); `BTreeMap` for deterministic dump order.
    lanes: BTreeMap<(u32, u32), Lane>,
    /// Wire (serialization) time charged per source node — the cluster
    /// half of the conservation identity with lane busy time.
    tx: BTreeMap<u32, Nanos>,
    /// Cached frontend-owned prefixes (the hot half of `owner_of`).
    fe_owns: Vec<CidrFilter>,
    quantum: Nanos,
    clock: Nanos,
    tracing: bool,
    /// The caller's own observability session, parked while per-node
    /// sessions run.
    outer_session: Option<rctrace::PausedSession>,
    egress_scratch: Vec<(Nanos, Packet)>,
    fe_scratch: Vec<(Nanos, NodeId, Packet)>,
}

impl World {
    /// Builds a star-topology cluster: every node is joined to the
    /// frontend by a lane pair of `lane`'s parameters. Each kernel's
    /// egress filter is set to the union of every *other* node's owned
    /// prefixes (including the frontend's client space), so foreign
    /// traffic is captured for inter-node carriage and local traffic
    /// stays local.
    pub fn new(specs: Vec<NodeSpec>, frontend: Frontend, lane: LaneSpec) -> Self {
        assert!(
            !lane.latency.is_zero(),
            "inter-node lanes need non-zero latency: it is the conservative lookahead"
        );
        let fe_owns = frontend.owns();
        let mut nodes = Vec::with_capacity(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            let mut filter: Vec<CidrFilter> = fe_owns.clone();
            for (j, other) in specs.iter().enumerate() {
                if i != j {
                    filter.extend(other.owns.iter().copied());
                }
            }
            let mut kernel = Kernel::new(spec.kernel.clone());
            kernel.set_egress_filter(filter);
            nodes.push(Node {
                name: spec.name.clone(),
                kernel,
                world: Box::new(NullWorld),
                owns: spec.owns.clone(),
                session: None,
            });
        }
        let mut lanes = BTreeMap::new();
        for i in 0..nodes.len() as u32 {
            lanes.insert((i, FRONTEND.0), Lane::new(lane));
            lanes.insert((FRONTEND.0, i), Lane::new(lane));
        }
        World {
            nodes,
            frontend,
            lanes,
            tx: BTreeMap::new(),
            fe_owns,
            quantum: lane.latency,
            clock: Nanos::ZERO,
            tracing: false,
            outer_session: None,
            egress_scratch: Vec::new(),
            fe_scratch: Vec::new(),
        }
    }

    /// Adds a direct lane between two kernel nodes (beyond the default
    /// star). The world's round quantum shrinks to the smallest lane
    /// latency.
    pub fn add_lane(&mut self, src: NodeId, dst: NodeId, lane: LaneSpec) {
        assert!(!lane.latency.is_zero(), "lanes need non-zero latency");
        self.quantum = self.quantum.min(lane.latency);
        self.lanes.insert((src.0, dst.0), Lane::new(lane));
    }

    /// Number of kernel nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the cluster has no kernel nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current cluster-wide virtual time (every node has stepped to it).
    pub fn clock(&self) -> Nanos {
        self.clock
    }

    /// The node's kernel (scenarios spawn processes and read usage).
    pub fn kernel(&self, node: NodeId) -> &Kernel {
        &self.nodes[node.0 as usize].kernel
    }

    /// Mutable access to a node's kernel.
    pub fn kernel_mut(&mut self, node: NodeId) -> &mut Kernel {
        &mut self.nodes[node.0 as usize].kernel
    }

    /// A node's display name.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize].name
    }

    /// Replaces a node's local world (defaults to [`NullWorld`]).
    pub fn set_node_world(&mut self, node: NodeId, world: Box<dyn simos::World>) {
        self.nodes[node.0 as usize].world = world;
    }

    /// Starts one observability session per node (node id order). Any
    /// session the caller had active is parked and restored by
    /// [`World::finish_tracing`]. Call before the first [`World::run`].
    pub fn start_tracing(&mut self, cfg: rctrace::TraceConfig) {
        self.outer_session = Some(rctrace::pause());
        for node in &mut self.nodes {
            rctrace::start(cfg);
            node.session = Some(rctrace::pause());
        }
        self.tracing = true;
    }

    /// Finishes every node's session (flushing end-of-run totals) and
    /// returns them as `(node name, session)` pairs in node id order,
    /// restoring the caller's parked session.
    pub fn finish_tracing(&mut self) -> Vec<(String, rctrace::TraceSession)> {
        let mut out = Vec::new();
        if self.tracing {
            for node in &mut self.nodes {
                if let Some(s) = node.session.take() {
                    rctrace::resume(s);
                    node.kernel.flush_observability();
                    if let Some(sess) = rctrace::finish() {
                        out.push((node.name.clone(), sess));
                    }
                }
            }
            self.tracing = false;
        }
        if let Some(outer) = self.outer_session.take() {
            rctrace::resume(outer);
        }
        out
    }

    /// Advances the whole cluster to `until` in conservative rounds: each
    /// round steps every kernel node to the shared horizon, then the
    /// frontend, then carries all captured egress over the lanes. Every
    /// carried packet arrives at `departure + serialization + latency ≥`
    /// the horizon, so no node ever receives an event in its past.
    pub fn run(&mut self, until: Nanos) {
        while self.clock < until {
            let horizon = (self.clock + self.quantum).min(until);
            for i in 0..self.nodes.len() {
                let node = &mut self.nodes[i];
                if let Some(s) = node.session.take() {
                    rctrace::resume(s);
                }
                node.kernel.step_until(node.world.as_mut(), horizon);
                node.kernel.drain_egress_into(&mut self.egress_scratch);
                if self.tracing {
                    node.session = Some(rctrace::pause());
                }
                let mut pkts = std::mem::take(&mut self.egress_scratch);
                for (departure, pkt) in pkts.drain(..) {
                    self.route_egress(NodeId(i as u32), departure, pkt);
                }
                self.egress_scratch = pkts;
            }
            self.frontend.step_until(horizon);
            let mut deps = std::mem::take(&mut self.fe_scratch);
            self.frontend.drain_departures_into(&mut deps);
            for (departure, dst, pkt) in deps.drain(..) {
                self.carry(FRONTEND, dst, departure, pkt);
            }
            self.fe_scratch = deps;
            self.clock = horizon;
        }
    }

    /// The node owning a foreign address: the frontend's client space
    /// first, then kernel nodes in id order.
    fn owner_of(&self, addr: IpAddr) -> NodeId {
        if self.fe_owns.iter().any(|f| f.matches(addr)) {
            return FRONTEND;
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.owns.iter().any(|f| f.matches(addr)) {
                return NodeId(i as u32);
            }
        }
        panic!("no cluster node owns foreign address {addr:?}");
    }

    fn route_egress(&mut self, src: NodeId, departure: Nanos, pkt: Packet) {
        let dst = self.owner_of(pkt.flow.src);
        self.carry(src, dst, departure, pkt);
    }

    /// Carries one packet over the `(src, dst)` lane, charging the
    /// serialization to the source node.
    fn carry(&mut self, src: NodeId, dst: NodeId, departure: Nanos, pkt: Packet) {
        let lane = self
            .lanes
            .get_mut(&(src.0, dst.0))
            .unwrap_or_else(|| panic!("no lane {src} -> {dst}: only direct-lane routing"));
        let (arrival, ser) = lane.transmit(departure, pkt.wire_bytes() as u64);
        if !ser.is_zero() {
            *self.tx.entry(src.0).or_insert(Nanos::ZERO) += ser;
        }
        if dst == FRONTEND {
            self.frontend.deliver(pkt, arrival);
        } else {
            self.nodes[dst.0 as usize]
                .kernel
                .inject_packet(pkt, arrival);
        }
    }

    /// Total lane busy (serialization) time across the cluster.
    pub fn lanes_busy_total(&self) -> Nanos {
        self.lanes.values().fold(Nanos::ZERO, |acc, l| acc + l.busy)
    }

    /// Total wire time charged to source nodes — equals
    /// [`World::lanes_busy_total`] by construction (the conservation
    /// identity the cluster tests assert).
    pub fn tx_total(&self) -> Nanos {
        self.tx.values().fold(Nanos::ZERO, |acc, &t| acc + t)
    }

    /// Wire time charged to one source node.
    pub fn tx_of(&self, node: NodeId) -> Nanos {
        self.tx.get(&node.0).copied().unwrap_or(Nanos::ZERO)
    }

    /// One lane's accounting, if the lane exists.
    pub fn lane(&self, src: NodeId, dst: NodeId) -> Option<&Lane> {
        self.lanes.get(&(src.0, dst.0))
    }

    /// A deterministic plain-text dump of the whole cluster state:
    /// per-node kernel counters and per-container usage, frontend
    /// counters, and per-lane accounting. Two same-seed runs must produce
    /// byte-identical dumps — the cluster determinism contract.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cluster clock={}", self.clock.as_nanos());
        for (i, node) in self.nodes.iter().enumerate() {
            let k = &node.kernel;
            let s = k.stats();
            let _ = writeln!(
                out,
                "node{} name={} clock={} charged={} interrupt={} idle={} pkts_in={} pkts_out={} drops={} ctx={} events={}",
                i,
                node.name,
                k.clock().as_nanos(),
                s.charged_cpu.as_nanos(),
                s.interrupt_cpu.as_nanos(),
                s.idle_cpu.as_nanos(),
                s.pkts_in,
                s.pkts_out,
                s.early_drops,
                s.ctx_switches,
                s.sim_events,
            );
            let mut rows: Vec<(u64, String, u64, u64, u64)> = k
                .containers
                .iter()
                .map(|(id, c)| {
                    (
                        id.as_u64(),
                        c.attrs().name.clone().unwrap_or_default(),
                        k.containers
                            .subtree_cpu(id)
                            .unwrap_or(Nanos::ZERO)
                            .as_nanos(),
                        k.containers
                            .subtree_disk(id)
                            .unwrap_or(Nanos::ZERO)
                            .as_nanos(),
                        k.containers
                            .subtree_tx(id)
                            .unwrap_or(Nanos::ZERO)
                            .as_nanos(),
                    )
                })
                .collect();
            rows.sort();
            for (id, name, cpu, disk, tx) in rows {
                let _ = writeln!(
                    out,
                    "  container{id} name={name} cpu={cpu} disk={disk} tx={tx}"
                );
            }
        }
        let fs = self.frontend.stats;
        let _ = writeln!(
            out,
            "frontend forwarded={} assigned={} unroutable={} sticky={}",
            fs.forwarded,
            fs.assigned,
            fs.unroutable,
            self.frontend.sticky_flows(),
        );
        for (&(src, dst), lane) in &self.lanes {
            let _ = writeln!(
                out,
                "lane {}->{} busy={} bytes={} pkts={}",
                NodeId(src),
                NodeId(dst),
                lane.busy.as_nanos(),
                lane.wire_bytes,
                lane.pkts,
            );
        }
        for (&src, &t) in &self.tx {
            let _ = writeln!(out, "tx {} wire={}", NodeId(src), t.as_nanos());
        }
        out
    }
}
