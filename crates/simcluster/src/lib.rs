//! Multi-kernel cluster simulation.
//!
//! `simcluster` scales the single-kernel simulation out to a *cluster*: a
//! [`World`] owns N [`Node`]s — each a full `simos` kernel with its own
//! clock frontier — plus a front-end load-balancer node hosting the
//! client worlds, and advances all of them conservatively against a
//! shared DES horizon. Inter-node traffic crosses finite [`Lane`]s with
//! FIFO serialization and per-source wire-time accounting, so the
//! conservation identities of the single-node link model extend across
//! machines.
//!
//! # Conservative synchronization
//!
//! Every inter-node lane has a minimum latency `L`; the world advances in
//! barrier-synchronous rounds of quantum `Δ ≤ L`. In each round every
//! node steps from `T` to `T + Δ` via [`simos::Kernel::step_until`]; all
//! packets captured by the egress filters are then carried over their
//! lanes, arriving at `departure + serialization + latency ≥ T + Δ` —
//! never in any node's past. Single-node runs through the same stepping
//! surface are byte-identical to [`simos::Kernel::run`].
//!
//! # Cross-machine resource management
//!
//! Container hierarchies span machines logically: a tenant owns one
//! container per node, and the [`GlobalShare`] balancer periodically
//! re-parameterizes per-node fixed shares from observed charge rates so
//! the tenant's *global* share converges on its target — the
//! cluster-level analogue of the SMP lag-ranked balancer. The
//! [`Orchestrator`] consumes the same observations to place and drain
//! per-tenant server replicas (profile-then-rebalance, à la C-Balancer).

pub mod frontend;
pub mod link;
pub mod orchestrator;
pub mod share;
pub mod world;

pub use frontend::{Frontend, TenantRoute};
pub use link::{Lane, LaneSpec};
pub use orchestrator::{Action, Orchestrator, OrchestratorConfig};
pub use share::{GlobalShare, TenantShare};
pub use world::{Node, NodeId, NodeSpec, World, FRONTEND};
