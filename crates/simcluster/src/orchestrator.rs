//! Replica placement: the profile-then-rebalance loop over *placement*
//! rather than shares.
//!
//! Share balancing alone cannot fix a tenant that simply isn't present
//! where the capacity is: a tenant confined to 2 of 8 nodes can never
//! exceed 25% of cluster CPU however its per-node shares are tuned. The
//! [`Orchestrator`] watches the same epoch observations as
//! [`crate::GlobalShare`] and, when a tenant lags its target persistently
//! *and* its current nodes are saturated, decides to **place** a new
//! replica on the least-loaded node without one (lowest node id on ties
//! — determinism is part of the contract). Conversely a tenant
//! persistently over target with replicas to spare gets its
//! busiest-node replica **drained** (load-balancer weight to zero;
//! in-flight connections finish). Placing on one side and draining on
//! the other is how traffic migrates.
//!
//! The orchestrator is pure decision logic: it returns [`Action`]s and
//! the harness executes them (spawning server processes needs
//! application knowledge a placement layer shouldn't have).

use std::collections::BTreeSet;

use crate::world::NodeId;

/// Orchestrator tuning.
#[derive(Clone, Copy, Debug)]
pub struct OrchestratorConfig {
    /// A tenant lags when `target − measured > lag_threshold`.
    pub lag_threshold: f64,
    /// Consecutive lagging epochs before acting.
    pub patience: u32,
    /// A node is saturated when its busy fraction is at least this.
    pub saturation: f64,
    /// Never drain a tenant below this many active replicas.
    pub min_replicas: usize,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            lag_threshold: 0.05,
            patience: 2,
            saturation: 0.80,
            min_replicas: 1,
        }
    }
}

/// A placement decision for the harness to execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Spawn a replica of `tenant`'s server on `node` and give it
    /// load-balancer weight.
    Place {
        /// Tenant index.
        tenant: usize,
        /// Target node.
        node: NodeId,
    },
    /// Set `tenant`'s load-balancer weight on `node` to zero; the
    /// process stays up until its flows finish.
    Drain {
        /// Tenant index.
        tenant: usize,
        /// Node being drained.
        node: NodeId,
    },
}

/// One tenant's streak counters.
#[derive(Clone, Copy, Debug, Default)]
struct Streaks {
    lagging: u32,
    over: u32,
}

/// The placement orchestrator.
pub struct Orchestrator {
    cfg: OrchestratorConfig,
    /// Active (non-drained) replica nodes per tenant.
    replicas: Vec<BTreeSet<u32>>,
    streaks: Vec<Streaks>,
}

impl Orchestrator {
    /// An orchestrator for `initial_replicas[tenant]` = the nodes each
    /// tenant starts on.
    pub fn new(cfg: OrchestratorConfig, initial_replicas: Vec<Vec<NodeId>>) -> Self {
        let streaks = vec![Streaks::default(); initial_replicas.len()];
        let replicas = initial_replicas
            .into_iter()
            .map(|nodes| nodes.into_iter().map(|n| n.0).collect())
            .collect();
        Orchestrator {
            cfg,
            replicas,
            streaks,
        }
    }

    /// The active replica nodes of a tenant.
    pub fn replicas(&self, tenant: usize) -> Vec<NodeId> {
        self.replicas[tenant].iter().map(|&n| NodeId(n)).collect()
    }

    /// One epoch of decisions. `measured`/`targets` are global CPU
    /// fractions per tenant (from [`crate::GlobalShare`]); `node_busy` is
    /// each node's busy fraction over the epoch. Placements and drains
    /// are applied to the internal replica sets immediately, so the next
    /// epoch reasons about the new layout.
    pub fn tick(&mut self, measured: &[f64], targets: &[f64], node_busy: &[f64]) -> Vec<Action> {
        let mut actions = Vec::new();
        for t in 0..self.replicas.len() {
            let err = targets[t] - measured[t];
            {
                let s = &mut self.streaks[t];
                if err > self.cfg.lag_threshold {
                    s.lagging += 1;
                    s.over = 0;
                } else if -err > self.cfg.lag_threshold {
                    s.over += 1;
                    s.lagging = 0;
                } else {
                    s.lagging = 0;
                    s.over = 0;
                }
            }
            let s = self.streaks[t];
            if s.lagging >= self.cfg.patience && self.saturated(t, node_busy) {
                if let Some(node) = self.spread_target(t, node_busy) {
                    self.replicas[t].insert(node.0);
                    self.streaks[t].lagging = 0;
                    actions.push(Action::Place { tenant: t, node });
                }
            } else if s.over >= self.cfg.patience && self.replicas[t].len() > self.cfg.min_replicas
            {
                if let Some(node) = self.drain_target(t, node_busy) {
                    self.replicas[t].remove(&node.0);
                    self.streaks[t].over = 0;
                    actions.push(Action::Drain { tenant: t, node });
                }
            }
        }
        actions
    }

    /// A tenant expands only when every node it already runs on is
    /// saturated — otherwise the share balancer still has local headroom
    /// to exploit and placement would be premature.
    fn saturated(&self, tenant: usize, node_busy: &[f64]) -> bool {
        self.replicas[tenant]
            .iter()
            .all(|&n| node_busy.get(n as usize).copied().unwrap_or(0.0) >= self.cfg.saturation)
    }

    /// Least-busy node without a replica of the tenant (lowest id ties).
    fn spread_target(&self, tenant: usize, node_busy: &[f64]) -> Option<NodeId> {
        let mut best: Option<(f64, u32)> = None;
        for (n, &busy) in node_busy.iter().enumerate() {
            let n = n as u32;
            if self.replicas[tenant].contains(&n) {
                continue;
            }
            if best.is_none_or(|(b, _)| busy < b) {
                best = Some((busy, n));
            }
        }
        best.map(|(_, n)| NodeId(n))
    }

    /// Busiest replica node (lowest id ties) — draining where contention
    /// is worst frees the most capacity for the lagging tenants.
    fn drain_target(&self, tenant: usize, node_busy: &[f64]) -> Option<NodeId> {
        let mut best: Option<(f64, u32)> = None;
        for &n in &self.replicas[tenant] {
            let busy = node_busy.get(n as usize).copied().unwrap_or(0.0);
            if best.is_none_or(|(b, _)| busy > b) {
                best = Some((busy, n));
            }
        }
        best.map(|(_, n)| NodeId(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn places_only_after_patience_and_saturation() {
        let mut o = Orchestrator::new(
            OrchestratorConfig {
                lag_threshold: 0.05,
                patience: 2,
                saturation: 0.8,
                min_replicas: 1,
            },
            vec![vec![NodeId(0)]],
        );
        let busy = [0.95, 0.2, 0.4];
        // First lagging epoch: patience not yet met.
        assert!(o.tick(&[0.10], &[0.30], &busy).is_empty());
        // Second: place on the least-busy node without a replica.
        assert_eq!(
            o.tick(&[0.10], &[0.30], &busy),
            vec![Action::Place {
                tenant: 0,
                node: NodeId(1)
            }]
        );
        assert_eq!(o.replicas(0), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn no_placement_with_local_headroom() {
        let mut o = Orchestrator::new(OrchestratorConfig::default(), vec![vec![NodeId(0)]]);
        let busy = [0.30, 0.10];
        for _ in 0..5 {
            assert!(o.tick(&[0.05], &[0.50], &busy).is_empty());
        }
    }

    #[test]
    fn drains_busiest_replica_when_over_target() {
        let mut o = Orchestrator::new(
            OrchestratorConfig {
                patience: 2,
                ..OrchestratorConfig::default()
            },
            vec![vec![NodeId(0), NodeId(1), NodeId(2)]],
        );
        let busy = [0.5, 0.9, 0.7];
        assert!(o.tick(&[0.80], &[0.30], &busy).is_empty());
        assert_eq!(
            o.tick(&[0.80], &[0.30], &busy),
            vec![Action::Drain {
                tenant: 0,
                node: NodeId(1)
            }]
        );
        assert_eq!(o.replicas(0), vec![NodeId(0), NodeId(2)]);
    }
}
