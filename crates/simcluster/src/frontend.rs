//! The front-end load-balancer node.
//!
//! The frontend is the cluster node that *hosts the client worlds*: it
//! owns the client address space, runs client timers on its own event
//! queue, and sprays each new connection across the backend replicas of
//! the client's tenant. It is not a kernel — a load balancer that only
//! rewrites and forwards frames would contribute nothing to the resource
//! accounting story — so it steps a plain DES loop instead.
//!
//! Routing is two-level and deterministic:
//!
//! - **Tenant match**: the packet's client (source) address is matched
//!   against each [`TenantRoute`]'s prefix filter.
//! - **Replica pick**: a `SYN` starts a new connection and is assigned by
//!   smooth weighted round-robin over the tenant's replicas; every later
//!   packet of the flow follows the sticky entry, so a connection never
//!   straddles backends. Clients open each connection from a fresh source
//!   port, so reconnects re-enter WRR and *traffic migrates* when the
//!   orchestrator changes weights — no address rewriting is needed,
//!   because backend replies name the client address and route back here
//!   by prefix ownership.

use std::collections::HashMap;

use simcore::{EventQueue, Nanos};
use simnet::{CidrFilter, FlowKey, Packet, PacketKind};
use simos::{World, WorldAction};

use crate::world::NodeId;

/// Routing state for one tenant: which clients it owns and where its
/// server replicas live.
#[derive(Clone, Debug)]
pub struct TenantRoute {
    /// Client source prefix identifying the tenant's traffic.
    pub filter: CidrFilter,
    /// `(backend node, weight)` per replica; weight 0 = draining (no new
    /// connections, existing flows finish).
    pub replicas: Vec<(NodeId, u32)>,
    /// Smooth-WRR running credit, one per replica.
    current: Vec<i64>,
}

impl TenantRoute {
    /// A route for clients matching `filter`, initially served by
    /// `replicas`.
    pub fn new(filter: CidrFilter, replicas: Vec<(NodeId, u32)>) -> Self {
        let current = vec![0; replicas.len()];
        TenantRoute {
            filter,
            replicas,
            current,
        }
    }

    /// Smooth weighted round-robin: each pick adds every replica's weight
    /// to its credit, takes the highest-credit replica (lowest node id on
    /// ties), and debits it by the total weight. Deterministic and
    /// drift-free: over any window the pick counts track the weights.
    fn pick(&mut self) -> Option<NodeId> {
        let total: i64 = self.replicas.iter().map(|&(_, w)| w as i64).sum();
        if total == 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for (i, &(node, w)) in self.replicas.iter().enumerate() {
            if w == 0 {
                // Draining: keeps its residual credit but takes no picks.
                continue;
            }
            self.current[i] += w as i64;
            match best {
                Some(b)
                    if self.current[i] > self.current[b]
                        || (self.current[i] == self.current[b] && node < self.replicas[b].0) =>
                {
                    best = Some(i)
                }
                None => best = Some(i),
                _ => {}
            }
        }
        let b = best?;
        self.current[b] -= total;
        Some(self.replicas[b].0)
    }

    /// Sets (or adds) a replica's weight.
    pub fn set_weight(&mut self, node: NodeId, weight: u32) {
        if let Some(i) = self.replicas.iter().position(|&(n, _)| n == node) {
            self.replicas[i].1 = weight;
        } else {
            self.replicas.push((node, weight));
            self.current.push(0);
        }
    }

    /// The current weight of a replica (0 if absent).
    pub fn weight(&self, node: NodeId) -> u32 {
        self.replicas
            .iter()
            .find(|&&(n, _)| n == node)
            .map_or(0, |&(_, w)| w)
    }
}

/// Internal frontend events.
enum FeEvent {
    /// A packet arrived from a backend for a hosted client world.
    Deliver(Packet),
    /// A hosted world timer fired.
    Timer(u64),
}

/// Aggregate frontend counters (read after the run).
#[derive(Clone, Copy, Debug, Default)]
pub struct FrontendStats {
    /// Packets forwarded towards backends.
    pub forwarded: u64,
    /// New connections assigned by WRR.
    pub assigned: u64,
    /// Packets dropped because no tenant route matched or every replica
    /// was draining.
    pub unroutable: u64,
}

/// The front-end load-balancer node: hosts client worlds, sprays new
/// connections over backend replicas, and books per-flow stickiness.
pub struct Frontend {
    /// The hosted client world (compose multiple with a composite world).
    world: Box<dyn World>,
    routes: Vec<TenantRoute>,
    /// Live flow → backend assignments.
    sticky: HashMap<FlowKey, NodeId>,
    events: EventQueue<FeEvent>,
    clock: Nanos,
    /// Packets departing towards backends this step: `(departure, dst,
    /// packet)`, harvested by the cluster world after each step.
    departures: Vec<(Nanos, NodeId, Packet)>,
    /// Reusable action buffer for world upcalls.
    actions: Vec<WorldAction>,
    /// Aggregate counters.
    pub stats: FrontendStats,
}

impl Frontend {
    /// A frontend hosting `world`, routing tenants per `routes`.
    pub fn new(world: Box<dyn World>, routes: Vec<TenantRoute>) -> Self {
        Frontend {
            world,
            routes,
            sticky: HashMap::new(),
            events: EventQueue::new(),
            clock: Nanos::ZERO,
            departures: Vec::new(),
            actions: Vec::new(),
            stats: FrontendStats::default(),
        }
    }

    /// The union of all tenant prefixes — the foreign address space this
    /// node owns, for the cluster world's routing table.
    pub fn owns(&self) -> Vec<CidrFilter> {
        self.routes.iter().map(|r| r.filter).collect()
    }

    /// Arms a hosted-world timer at an absolute time (the frontend
    /// analogue of [`simos::Kernel::arm_world_timer`]).
    pub fn arm_world_timer(&mut self, tag: u64, at: Nanos) {
        self.events
            .schedule(at.max(self.clock), FeEvent::Timer(tag));
    }

    /// Enqueues a backend packet for delivery to the hosted world at
    /// `at` (lane arrival time). A server-side close (FIN/RST) retires
    /// the flow's sticky entry, so the table tracks live connections.
    pub fn deliver(&mut self, pkt: Packet, at: Nanos) {
        if matches!(pkt.kind, PacketKind::Fin | PacketKind::Rst) {
            self.sticky.remove(&pkt.flow);
        }
        self.events
            .schedule(at.max(self.clock), FeEvent::Deliver(pkt));
    }

    /// Sets a tenant replica's WRR weight (orchestrator actuation).
    pub fn set_weight(&mut self, tenant: usize, node: NodeId, weight: u32) {
        self.routes[tenant].set_weight(node, weight);
    }

    /// Read access to a tenant's route (weights, replicas).
    pub fn route(&self, tenant: usize) -> &TenantRoute {
        &self.routes[tenant]
    }

    /// Number of tenant routes.
    pub fn tenants(&self) -> usize {
        self.routes.len()
    }

    /// Live sticky-flow entries (open or recently opened connections).
    pub fn sticky_flows(&self) -> usize {
        self.sticky.len()
    }

    /// Steps the frontend to `horizon`, delivering due events to the
    /// hosted world and translating its send actions into routed
    /// departures (harvest them with [`Frontend::drain_departures_into`]).
    pub fn step_until(&mut self, horizon: Nanos) {
        while let Some((at, ev)) = self.events.pop_due(horizon) {
            self.clock = at;
            let mut actions = std::mem::take(&mut self.actions);
            match ev {
                FeEvent::Deliver(pkt) => self.world.on_packet(pkt, at, &mut actions),
                FeEvent::Timer(tag) => self.world.on_timer(tag, at, &mut actions),
            }
            for a in actions.drain(..) {
                match a {
                    WorldAction::SendPacket { pkt, delay } => self.route_out(pkt, at + delay),
                    WorldAction::SetTimer { tag, delay } => {
                        self.events.schedule(at + delay, FeEvent::Timer(tag));
                    }
                }
            }
            self.actions = actions;
        }
        self.clock = horizon;
    }

    /// Moves this step's routed departures into `out`.
    pub fn drain_departures_into(&mut self, out: &mut Vec<(Nanos, NodeId, Packet)>) {
        out.append(&mut self.departures);
    }

    /// Routes one client packet towards a backend: tenant match on the
    /// source prefix, then sticky lookup (SYNs re-enter WRR).
    fn route_out(&mut self, pkt: Packet, departure: Nanos) {
        let Some(route) = self
            .routes
            .iter_mut()
            .find(|r| r.filter.matches(pkt.flow.src))
        else {
            self.stats.unroutable += 1;
            return;
        };
        let dst = if matches!(pkt.kind, PacketKind::Syn) {
            match route.pick() {
                Some(node) => {
                    self.sticky.insert(pkt.flow, node);
                    self.stats.assigned += 1;
                    node
                }
                None => {
                    self.stats.unroutable += 1;
                    return;
                }
            }
        } else {
            match self.sticky.get(&pkt.flow) {
                Some(&node) => node,
                None => {
                    // Stale flow (e.g. an RST after the entry was dropped):
                    // nothing to tear down, drop it.
                    self.stats.unroutable += 1;
                    return;
                }
            }
        };
        // A FIN or RST ends the flow; retire the sticky entry so the
        // table tracks live connections, not history.
        if matches!(pkt.kind, PacketKind::Fin | PacketKind::Rst) {
            self.sticky.remove(&pkt.flow);
        }
        self.stats.forwarded += 1;
        self.departures.push((departure, dst, pkt));
    }
}
