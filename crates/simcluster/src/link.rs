//! Inter-node links: directed point-to-point lanes with propagation
//! latency, finite bandwidth, and FIFO serialization.
//!
//! A lane is deliberately simpler than the in-kernel transmit path (no
//! queueing discipline, no per-container scheduling): contention *within*
//! a node is already resolved by that node's link scheduler, so the lane
//! only has to serialize departures in order and account wire time. The
//! accounting is double-entry — the lane accumulates busy time, the
//! [`crate::World`] charges the same serialization to the source node —
//! which makes conservation across the cluster assertable:
//! `Σ per-node tx charges == Σ lane busy time`.

use simcore::Nanos;

/// Static description of one directed lane.
#[derive(Clone, Copy, Debug)]
pub struct LaneSpec {
    /// Propagation latency; must be at least the world's round quantum
    /// for conservative synchronization to be safe.
    pub latency: Nanos,
    /// Bandwidth in bits/sec; `0` = infinite (no serialization time).
    pub bandwidth_bps: u64,
}

impl LaneSpec {
    /// A lane with the given latency and bandwidth.
    pub fn new(latency: Nanos, bandwidth_bps: u64) -> Self {
        LaneSpec {
            latency,
            bandwidth_bps,
        }
    }

    /// Serialization time of `wire_bytes` on this lane (zero when the
    /// bandwidth is infinite). Same rounding as the in-kernel
    /// [`simnet::LinkParams::wire_time`] so cross- and intra-node wire
    /// accounting agree.
    pub fn wire_time(&self, wire_bytes: u64) -> Nanos {
        if self.bandwidth_bps == 0 {
            return Nanos::ZERO;
        }
        let bits = (wire_bytes as u128) * 8 * 1_000_000_000;
        let ns = bits.div_ceil(self.bandwidth_bps as u128);
        Nanos::from_nanos(ns as u64)
    }
}

/// One directed lane's mutable state and accounting.
#[derive(Clone, Copy, Debug)]
pub struct Lane {
    /// The lane's static parameters.
    pub spec: LaneSpec,
    /// When the wire frees up (FIFO head-of-line).
    busy_until: Nanos,
    /// Accumulated serialization (busy) time.
    pub busy: Nanos,
    /// Total wire bytes carried.
    pub wire_bytes: u64,
    /// Total packets carried.
    pub pkts: u64,
}

impl Lane {
    /// An idle lane.
    pub fn new(spec: LaneSpec) -> Self {
        Lane {
            spec,
            busy_until: Nanos::ZERO,
            busy: Nanos::ZERO,
            wire_bytes: 0,
            pkts: 0,
        }
    }

    /// Carries a packet of `wire_bytes` departing its node at `departure`:
    /// serializes after any packet already on the wire, then propagates.
    /// Returns `(arrival, serialization)` — the serialization time is what
    /// the caller charges to the source node.
    pub fn transmit(&mut self, departure: Nanos, wire_bytes: u64) -> (Nanos, Nanos) {
        let start = departure.max(self.busy_until);
        let ser = self.spec.wire_time(wire_bytes);
        self.busy_until = start + ser;
        self.busy += ser;
        self.wire_bytes += wire_bytes;
        self.pkts += 1;
        (self.busy_until + self.spec.latency, ser)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_bandwidth_is_pure_latency() {
        let mut lane = Lane::new(LaneSpec::new(Nanos::from_micros(50), 0));
        let (arrival, ser) = lane.transmit(Nanos::from_micros(10), 1500);
        assert_eq!(arrival, Nanos::from_micros(60));
        assert!(ser.is_zero());
        assert!(lane.busy.is_zero());
    }

    #[test]
    fn fifo_serialization_queues_back_to_back_departures() {
        // 1 Gbit/s: 1250 bytes = 10 us on the wire.
        let mut lane = Lane::new(LaneSpec::new(Nanos::from_micros(100), 1_000_000_000));
        let (a1, s1) = lane.transmit(Nanos::ZERO, 1250);
        let (a2, s2) = lane.transmit(Nanos::ZERO, 1250);
        assert_eq!(s1, Nanos::from_micros(10));
        assert_eq!(s2, Nanos::from_micros(10));
        assert_eq!(a1, Nanos::from_micros(110));
        assert_eq!(a2, Nanos::from_micros(120));
        assert_eq!(lane.busy, Nanos::from_micros(20));
        assert_eq!(lane.pkts, 2);
    }
}
