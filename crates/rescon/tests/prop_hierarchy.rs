//! Property tests for the container hierarchy: random operation sequences
//! must preserve the structural invariants and conservation of accounting.

use proptest::prelude::*;
use rescon::{Attributes, ContainerId, ContainerTable, RcError};
use simcore::Nanos;

/// An abstract operation applied to the table.
#[derive(Clone, Debug)]
enum Op {
    /// Create a time-shared container under the i-th live container
    /// (modulo), or the root.
    CreateTs { parent_sel: usize, priority: u32 },
    /// Create a fixed-share container (share drawn from a small menu so
    /// overcommit happens sometimes but not always).
    CreateFs { parent_sel: usize, share_pct: u8 },
    /// Drop the creator reference of the i-th live non-root container.
    Release { sel: usize },
    /// Reparent the i-th live container under the j-th.
    Reparent { sel: usize, parent_sel: usize },
    /// Charge CPU to the i-th live container.
    ChargeCpu { sel: usize, micros: u32 },
    /// Charge then optionally release memory.
    ChargeMem { sel: usize, bytes: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), 0u32..32).prop_map(|(parent_sel, priority)| Op::CreateTs {
            parent_sel,
            priority
        }),
        (
            any::<usize>(),
            prop::sample::select(vec![5u8, 10, 25, 30, 50, 70, 90])
        )
            .prop_map(|(parent_sel, share_pct)| Op::CreateFs {
                parent_sel,
                share_pct
            }),
        any::<usize>().prop_map(|sel| Op::Release { sel }),
        (any::<usize>(), any::<usize>())
            .prop_map(|(sel, parent_sel)| Op::Reparent { sel, parent_sel }),
        (any::<usize>(), 1u32..10_000).prop_map(|(sel, micros)| Op::ChargeCpu { sel, micros }),
        (any::<usize>(), 1u16..u16::MAX).prop_map(|(sel, bytes)| Op::ChargeMem { sel, bytes }),
    ]
}

fn live_ids(t: &ContainerTable) -> Vec<ContainerId> {
    t.iter().map(|(id, _)| id).collect()
}

fn pick(ids: &[ContainerId], sel: usize) -> Option<ContainerId> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[sel % ids.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any operation sequence, the structural invariants hold and the
    /// root's cumulative CPU equals the total CPU ever charged.
    #[test]
    fn random_ops_preserve_invariants(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut t = ContainerTable::new();
        let mut total_charged = Nanos::ZERO;
        let mut detached_charge = Nanos::ZERO; // CPU charged to floating subtrees

        for op in ops {
            let ids = live_ids(&t);
            match op {
                Op::CreateTs { parent_sel, priority } => {
                    let parent = pick(&ids, parent_sel);
                    // May fail (time-share parent in strict mode): both fine.
                    let _ = t.create(parent, Attributes::time_shared(priority));
                }
                Op::CreateFs { parent_sel, share_pct } => {
                    let parent = pick(&ids, parent_sel);
                    let _ = t.create(parent, Attributes::fixed_share(share_pct as f64 / 100.0));
                }
                Op::Release { sel } => {
                    if let Some(id) = pick(&ids, sel) {
                        if id != t.root() && t.container(id).unwrap().descriptor_refs() > 0 {
                            let _ = t.drop_descriptor_ref(id);
                        }
                    }
                }
                Op::Reparent { sel, parent_sel } => {
                    if let (Some(id), Some(p)) = (pick(&ids, sel), pick(&ids, parent_sel)) {
                        let _ = t.set_parent(id, Some(p));
                    }
                }
                Op::ChargeCpu { sel, micros } => {
                    if let Some(id) = pick(&ids, sel) {
                        let dt = Nanos::from_micros(micros as u64);
                        t.charge_cpu(id, dt).unwrap();
                        total_charged += dt;
                    }
                }
                Op::ChargeMem { sel, bytes } => {
                    if let Some(id) = pick(&ids, sel) {
                        match t.charge_mem(id, bytes as u64) {
                            Ok(()) => t.release_mem(id, bytes as u64).unwrap(),
                            Err(RcError::LimitExceeded { .. }) | Err(RcError::NotFound) => {}
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                }
            }
            t.check_invariants();
        }

        // Conservation: total charged CPU equals root subtree CPU plus CPU
        // accumulated in floating (detached) subtrees.
        for id in t.top_level() {
            if t.parent(id).unwrap().is_none() {
                detached_charge += t.subtree_cpu(id).unwrap();
            }
        }
        let accounted =
            t.subtree_cpu(t.root()).unwrap() + detached_charge + t.reaped_cpu();
        // Conservation holds exactly: a destroyed container's own history
        // stays with its ancestors (or the table-level reaped counter when
        // it had none), and detached subtrees carry theirs.
        prop_assert_eq!(accounted, total_charged);
    }

    /// Fixed-share children of one parent never sum above 1.0, no matter
    /// what sequence of creates/reparents/attr changes we attempt.
    #[test]
    fn shares_never_overcommitted(
        shares in prop::collection::vec(1u8..=100, 1..20)
    ) {
        let mut t = ContainerTable::new();
        let mut accepted = 0.0f64;
        for pct in shares {
            let share = pct as f64 / 100.0;
            match t.create(None, Attributes::fixed_share(share)) {
                Ok(_) => accepted += share,
                Err(RcError::ShareOvercommit) => {
                    prop_assert!(accepted + share > 1.0 + 1e-9);
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        prop_assert!(accepted <= 1.0 + 1e-9);
        t.check_invariants();
    }

    /// Usage queries survive arbitrary create/destroy interleavings without
    /// ever observing another container's data (generation safety).
    #[test]
    fn stale_ids_never_alias(n in 1usize..40) {
        let mut t = ContainerTable::new();
        let mut dead: Vec<ContainerId> = Vec::new();
        for i in 0..n {
            let c = t.create(None, Attributes::time_shared(i as u32)).unwrap();
            t.charge_cpu(c, Nanos::from_micros(1)).unwrap();
            if i % 2 == 0 {
                t.drop_descriptor_ref(c).unwrap();
                dead.push(c);
            }
        }
        for d in dead {
            prop_assert_eq!(t.usage(d).unwrap_err(), RcError::NotFound);
        }
    }
}
