//! Resource containers: hierarchical resource principals decoupled from
//! protection domains.
//!
//! This crate implements the central abstraction of *"Resource Containers: A
//! New Facility for Resource Management in Server Systems"* (Banga, Druschel
//! & Mogul, OSDI '99). A **resource container** logically contains all the
//! system resources used by an application to carry out one *independent
//! activity* — for a web server, typically one client connection — no matter
//! which processes or threads perform the work, and no matter whether the
//! work happens at user level or inside the kernel.
//!
//! The crate provides, mirroring §4 of the paper:
//!
//! - [`ContainerTable`]: the kernel-side table of containers, their
//!   hierarchy (§4.5), their attributes (§4.1), and their resource usage
//!   accounting (CPU time, packets, memory — §4.1, §4.4).
//! - [`Attributes`] / [`SchedPolicy`]: scheduling parameters (numeric
//!   priority or guaranteed fixed share), CPU usage limits, memory limits,
//!   and network QoS values.
//! - [`SchedulerBinding`]: the set of containers over which a thread is
//!   currently multiplexed (§4.3), with the kernel-side pruning of stale
//!   entries and the explicit application-driven reset.
//! - [`DescriptorTable`]: containers are visible to applications as file
//!   descriptors, inherited across `fork()` and passable between processes
//!   (§4.6).
//!
//! What this crate deliberately does *not* contain: a CPU scheduler (see the
//! `sched` crate), a network stack (`simnet`), or a kernel (`simos`).
//! Containers are *a mechanism, not a policy* (§4.4): everything here is
//! bookkeeping that a kernel consults.
//!
//! # Examples
//!
//! ```
//! use rescon::{Attributes, ContainerTable, SchedPolicy};
//! use simcore::Nanos;
//!
//! let mut table = ContainerTable::new();
//! // A web server gets a fixed-share parent container...
//! let server = table
//!     .create(None, Attributes::fixed_share(0.7).named("httpd"))
//!     .unwrap();
//! // ...and one child container per client connection.
//! let conn = table
//!     .create(Some(server), Attributes::time_shared(10))
//!     .unwrap();
//! // Kernel processing for the connection is charged to its container.
//! table.charge_cpu(conn, Nanos::from_micros(105)).unwrap();
//! assert_eq!(table.usage(conn).unwrap().cpu, Nanos::from_micros(105));
//! // ...and rolls up into the parent's subtree usage.
//! assert_eq!(table.subtree_cpu(server).unwrap(), Nanos::from_micros(105));
//! ```

pub mod attrs;
pub mod binding;
pub mod descriptor;
pub mod error;
pub mod table;
pub mod usage;

pub use attrs::{Attributes, CpuLimit, NetQos, SchedPolicy};
pub use binding::SchedulerBinding;
pub use descriptor::{ContainerFd, ContainerRef, DescriptorTable};
pub use error::RcError;
pub use table::{ContainerId, ContainerTable};
pub use usage::{MemClass, ResourceUsage};
