//! Thread-to-container bindings (paper §4.2, §4.3).
//!
//! A thread has one *resource binding* — the container its consumption is
//! charged to right now — and a *scheduler binding*: the set of containers
//! it has recently served. An event-driven server's single thread changes
//! its resource binding as it switches between connections; the scheduler
//! schedules the thread on the **combined** allocation of its scheduler
//! binding, which the kernel maintains implicitly and prunes periodically.

use simcore::Nanos;

use crate::table::ContainerId;

/// The set of containers over which a thread is currently multiplexed.
///
/// Maintained implicitly by the kernel: every time the thread's resource
/// binding is set to a container, that container is *touched*. Entries not
/// touched within the pruning age are removed periodically, and the
/// application can explicitly reset the set to just the current binding
/// (§4.6 "Reset the scheduler binding").
///
/// # Examples
///
/// ```
/// use rescon::{Attributes, ContainerTable, SchedulerBinding};
/// use simcore::Nanos;
///
/// let mut t = ContainerTable::new();
/// let a = t.create(None, Attributes::time_shared(4)).unwrap();
/// let b = t.create(None, Attributes::time_shared(8)).unwrap();
///
/// let mut sb = SchedulerBinding::new();
/// sb.touch(a, Nanos::from_millis(1));
/// sb.touch(b, Nanos::from_millis(2));
/// assert_eq!(sb.len(), 2);
///
/// // Prune entries idle for more than 5 ms at t = 7 ms: `a` goes.
/// sb.prune(Nanos::from_millis(7), Nanos::from_millis(5));
/// assert_eq!(sb.containers(), &[b]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SchedulerBinding {
    /// Bound containers, in insertion order. Kept separate from the
    /// timestamps so [`SchedulerBinding::containers`] can hand the
    /// scheduler a borrowed slice instead of allocating on every rebind.
    ids: Vec<ContainerId>,
    /// Last virtual time the thread served `ids[i]`.
    stamps: Vec<Nanos>,
}

impl SchedulerBinding {
    /// Creates an empty scheduler binding.
    pub fn new() -> Self {
        SchedulerBinding::default()
    }

    /// Records that the thread's resource binding was set to `c` at `now`.
    ///
    /// Inserts the container if absent; refreshes its timestamp otherwise.
    pub fn touch(&mut self, c: ContainerId, now: Nanos) {
        if let Some(i) = self.ids.iter().position(|&id| id == c) {
            self.stamps[i] = now;
        } else {
            self.ids.push(c);
            self.stamps.push(now);
        }
    }

    /// Removes entries the thread has not served since `now - max_age`
    /// (§4.3: "The kernel prunes the scheduler binding ... periodically
    /// removing resource containers that the thread has not recently had a
    /// resource binding to").
    ///
    /// Returns the number of entries removed.
    pub fn prune(&mut self, now: Nanos, max_age: Nanos) -> usize {
        let cutoff = now.saturating_sub(max_age);
        self.retain_pairs(|_, last| last >= cutoff)
    }

    /// Resets the binding to contain only `current` (§4.6).
    pub fn reset(&mut self, current: ContainerId, now: Nanos) {
        self.ids.clear();
        self.stamps.clear();
        self.ids.push(current);
        self.stamps.push(now);
    }

    /// Removes a specific container (used when a container is destroyed).
    pub fn remove(&mut self, c: ContainerId) {
        self.retain_pairs(|id, _| id != c);
    }

    /// Drops entries rejected by `live` (containers that have been
    /// destroyed). Kernels call this on every rebind so that a busy
    /// multiplexed thread's binding tracks only live activities instead of
    /// growing with connection churn until the next periodic prune.
    pub fn retain_live(&mut self, live: impl Fn(ContainerId) -> bool) {
        self.retain_pairs(|id, _| live(id));
    }

    /// Keeps only the entries passing `keep`, preserving order; returns
    /// the number removed.
    fn retain_pairs(&mut self, mut keep: impl FnMut(ContainerId, Nanos) -> bool) -> usize {
        let before = self.ids.len();
        let mut write = 0;
        for read in 0..before {
            if keep(self.ids[read], self.stamps[read]) {
                self.ids.swap(write, read);
                self.stamps.swap(write, read);
                write += 1;
            }
        }
        self.ids.truncate(write);
        self.stamps.truncate(write);
        before - write
    }

    /// Returns the bound containers, in insertion order, without
    /// allocating — this sits on the kernel's rebind hot path.
    pub fn containers(&self) -> &[ContainerId] {
        &self.ids
    }

    /// Iterates over the bound containers in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = ContainerId> + '_ {
        self.ids.iter().copied()
    }

    /// Returns the number of bound containers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if no containers are bound.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Returns `true` if `c` is in the binding.
    pub fn contains(&self, c: ContainerId) -> bool {
        self.ids.contains(&c)
    }

    /// Returns the last time `c` was served, if bound.
    pub fn last_served(&self, c: ContainerId) -> Option<Nanos> {
        self.ids
            .iter()
            .position(|&id| id == c)
            .map(|i| self.stamps[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attributes;
    use crate::table::ContainerTable;

    fn two_containers() -> (ContainerTable, ContainerId, ContainerId) {
        let mut t = ContainerTable::new();
        let a = t.create(None, Attributes::time_shared(1)).unwrap();
        let b = t.create(None, Attributes::time_shared(2)).unwrap();
        (t, a, b)
    }

    #[test]
    fn touch_inserts_once_and_refreshes() {
        let (_t, a, _b) = two_containers();
        let mut sb = SchedulerBinding::new();
        sb.touch(a, Nanos::from_millis(1));
        sb.touch(a, Nanos::from_millis(9));
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.last_served(a), Some(Nanos::from_millis(9)));
    }

    #[test]
    fn prune_removes_stale_only() {
        let (_t, a, b) = two_containers();
        let mut sb = SchedulerBinding::new();
        sb.touch(a, Nanos::from_millis(0));
        sb.touch(b, Nanos::from_millis(10));
        let removed = sb.prune(Nanos::from_millis(12), Nanos::from_millis(5));
        assert_eq!(removed, 1);
        assert!(!sb.contains(a));
        assert!(sb.contains(b));
    }

    #[test]
    fn prune_with_large_age_keeps_all() {
        let (_t, a, b) = two_containers();
        let mut sb = SchedulerBinding::new();
        sb.touch(a, Nanos::ZERO);
        sb.touch(b, Nanos::from_millis(1));
        assert_eq!(sb.prune(Nanos::from_millis(2), Nanos::from_secs(1)), 0);
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn reset_to_current() {
        let (_t, a, b) = two_containers();
        let mut sb = SchedulerBinding::new();
        sb.touch(a, Nanos::ZERO);
        sb.touch(b, Nanos::ZERO);
        sb.reset(b, Nanos::from_millis(1));
        assert_eq!(sb.containers(), vec![b]);
        assert_eq!(sb.last_served(b), Some(Nanos::from_millis(1)));
    }

    #[test]
    fn remove_specific() {
        let (_t, a, b) = two_containers();
        let mut sb = SchedulerBinding::new();
        sb.touch(a, Nanos::ZERO);
        sb.touch(b, Nanos::ZERO);
        sb.remove(a);
        assert_eq!(sb.containers(), vec![b]);
        assert!(sb.last_served(a).is_none());
    }

    #[test]
    fn empty_behaviour() {
        let mut sb = SchedulerBinding::new();
        assert!(sb.is_empty());
        assert_eq!(sb.prune(Nanos::from_secs(1), Nanos::from_millis(1)), 0);
        assert!(sb.containers().is_empty());
    }
}
