//! Per-process container descriptor tables (paper §4.6).
//!
//! "Containers are visible to the application as file descriptors (and so
//! are inherited by a new process after a fork())." This module implements
//! the descriptor side: open/close/dup, fork inheritance, and passing a
//! container between processes (the sender retains access, like UNIX
//! descriptor passing).
//!
//! The [`DescriptorTable`] manipulates reference counts on the shared
//! [`ContainerTable`]; closing the last descriptor of an otherwise
//! unreferenced container destroys it.

use crate::error::{RcError, Result};
use crate::table::{ContainerId, ContainerTable};

/// A process-local container descriptor (a small integer, like an fd).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerFd(pub u32);

/// Either way an application can name a container: through a
/// process-local descriptor (the common case, §4.6) or directly by
/// kernel id (trusted in-kernel callers and harness code).
///
/// Syscalls that bind resources to containers accept
/// `impl Into<ContainerRef>`, so call sites pass a [`ContainerFd`] or a
/// [`ContainerId`](crate::ContainerId) without choosing between parallel
/// `_fd`/`_id` method variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContainerRef {
    /// A descriptor in the calling process's table.
    Fd(ContainerFd),
    /// A raw container id, bypassing the descriptor table.
    Id(ContainerId),
}

impl From<ContainerFd> for ContainerRef {
    fn from(fd: ContainerFd) -> Self {
        ContainerRef::Fd(fd)
    }
}

impl From<ContainerId> for ContainerRef {
    fn from(id: ContainerId) -> Self {
        ContainerRef::Id(id)
    }
}

/// A per-process table mapping descriptors to containers.
///
/// # Examples
///
/// ```
/// use rescon::{Attributes, ContainerTable, DescriptorTable};
///
/// let mut containers = ContainerTable::new();
/// let c = containers.create(None, Attributes::time_shared(1)).unwrap();
///
/// let mut fds = DescriptorTable::new();
/// let fd = fds.adopt(c); // `create` already counted the creator's ref.
/// assert_eq!(fds.resolve(fd).unwrap(), c);
///
/// // Passing to another process: both ends hold a reference afterwards.
/// let mut other = DescriptorTable::new();
/// let their_fd = fds.pass_to(fd, &mut other, &mut containers).unwrap();
/// assert_eq!(other.resolve(their_fd).unwrap(), c);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DescriptorTable {
    slots: Vec<Option<ContainerId>>,
}

impl DescriptorTable {
    /// Creates an empty descriptor table.
    pub fn new() -> Self {
        DescriptorTable::default()
    }

    /// Returns the number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Installs a container into the lowest free descriptor slot *without*
    /// adjusting reference counts.
    ///
    /// Use this for the descriptor returned by `create` (which already
    /// counts one reference for the creator); use
    /// [`DescriptorTable::open`] when a new reference must be taken.
    pub fn adopt(&mut self, c: ContainerId) -> ContainerFd {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(c);
                return ContainerFd(i as u32);
            }
        }
        self.slots.push(Some(c));
        ContainerFd((self.slots.len() - 1) as u32)
    }

    /// Opens a new descriptor to an existing container, taking a reference
    /// (§4.6 "obtain handle for existing container").
    pub fn open(&mut self, c: ContainerId, containers: &mut ContainerTable) -> Result<ContainerFd> {
        containers.add_descriptor_ref(c)?;
        Ok(self.adopt(c))
    }

    /// Resolves a descriptor to its container.
    pub fn resolve(&self, fd: ContainerFd) -> Result<ContainerId> {
        self.slots
            .get(fd.0 as usize)
            .copied()
            .flatten()
            .ok_or(RcError::BadDescriptor)
    }

    /// Closes a descriptor, dropping its container reference (§4.6
    /// "Container release"). Returns `true` if this destroyed the
    /// container.
    pub fn close(&mut self, fd: ContainerFd, containers: &mut ContainerTable) -> Result<bool> {
        let c = self.resolve(fd)?;
        self.slots[fd.0 as usize] = None;
        containers.drop_descriptor_ref(c)
    }

    /// Clears a descriptor slot *without* dropping the container
    /// reference; the caller becomes responsible for the reference. Used
    /// by kernels whose borrow structure separates descriptor tables from
    /// the container table.
    pub fn forget(&mut self, fd: ContainerFd) -> Result<ContainerId> {
        let c = self.resolve(fd)?;
        self.slots[fd.0 as usize] = None;
        Ok(c)
    }

    /// Duplicates a descriptor within this process, taking a new reference.
    pub fn dup(&mut self, fd: ContainerFd, containers: &mut ContainerTable) -> Result<ContainerFd> {
        let c = self.resolve(fd)?;
        self.open(c, containers)
    }

    /// Sends a container to another process (§4.6 "Sharing containers
    /// between processes"); the sender retains access.
    pub fn pass_to(
        &self,
        fd: ContainerFd,
        receiver: &mut DescriptorTable,
        containers: &mut ContainerTable,
    ) -> Result<ContainerFd> {
        let c = self.resolve(fd)?;
        receiver.open(c, containers)
    }

    /// Clones this table for a forked child, taking one new reference per
    /// open descriptor (§4.6: descriptors "are inherited by a new process
    /// after a fork()").
    pub fn fork_inherit(&self, containers: &mut ContainerTable) -> Result<DescriptorTable> {
        let child = DescriptorTable {
            slots: self.slots.clone(),
        };
        for slot in child.slots.iter().flatten() {
            containers.add_descriptor_ref(*slot)?;
        }
        Ok(child)
    }

    /// Closes every descriptor (process exit). Returns how many containers
    /// were destroyed as a result.
    pub fn close_all(&mut self, containers: &mut ContainerTable) -> usize {
        let mut destroyed = 0;
        for slot in self.slots.iter_mut() {
            if let Some(c) = slot.take() {
                if containers.drop_descriptor_ref(c).unwrap_or(false) {
                    destroyed += 1;
                }
            }
        }
        destroyed
    }

    /// Iterates over open `(fd, container)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ContainerFd, ContainerId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|c| (ContainerFd(i as u32), c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attributes;

    fn setup() -> (ContainerTable, DescriptorTable, ContainerFd, ContainerId) {
        let mut ct = ContainerTable::new();
        let c = ct.create(None, Attributes::time_shared(1)).unwrap();
        let mut dt = DescriptorTable::new();
        let fd = dt.adopt(c);
        (ct, dt, fd, c)
    }

    #[test]
    fn adopt_uses_lowest_slot() {
        let (mut ct, mut dt, fd0, c) = setup();
        let fd1 = dt.open(c, &mut ct).unwrap();
        assert_eq!(fd0, ContainerFd(0));
        assert_eq!(fd1, ContainerFd(1));
        dt.close(fd0, &mut ct).unwrap();
        let fd2 = dt.open(c, &mut ct).unwrap();
        assert_eq!(fd2, ContainerFd(0));
    }

    #[test]
    fn close_last_descriptor_destroys() {
        let (mut ct, mut dt, fd, c) = setup();
        assert!(dt.close(fd, &mut ct).unwrap());
        assert!(!ct.contains(c));
        assert_eq!(dt.resolve(fd).unwrap_err(), RcError::BadDescriptor);
    }

    #[test]
    fn dup_keeps_alive_until_both_closed() {
        let (mut ct, mut dt, fd, c) = setup();
        let fd2 = dt.dup(fd, &mut ct).unwrap();
        assert!(!dt.close(fd, &mut ct).unwrap());
        assert!(ct.contains(c));
        assert!(dt.close(fd2, &mut ct).unwrap());
        assert!(!ct.contains(c));
    }

    #[test]
    fn pass_between_processes_sender_retains() {
        let (mut ct, dt, fd, c) = setup();
        let mut other = DescriptorTable::new();
        let ofd = dt.pass_to(fd, &mut other, &mut ct).unwrap();
        assert_eq!(other.resolve(ofd).unwrap(), c);
        assert_eq!(dt.resolve(fd).unwrap(), c);
        // Two references now: closing one keeps the container.
        assert!(!other.close(ofd, &mut ct).unwrap());
        assert!(ct.contains(c));
    }

    #[test]
    fn fork_inherits_all_open_descriptors() {
        let (mut ct, mut dt, fd, c) = setup();
        let c2 = ct.create(None, Attributes::time_shared(2)).unwrap();
        let fd2 = dt.adopt(c2);
        let mut child = dt.fork_inherit(&mut ct).unwrap();
        assert_eq!(child.resolve(fd).unwrap(), c);
        assert_eq!(child.resolve(fd2).unwrap(), c2);
        // Parent exit alone does not destroy.
        assert_eq!(dt.close_all(&mut ct), 0);
        assert!(ct.contains(c));
        // Child exit destroys both.
        assert_eq!(child.close_all(&mut ct), 2);
        assert!(!ct.contains(c));
        assert!(!ct.contains(c2));
    }

    #[test]
    fn resolve_bad_fd() {
        let (_ct, dt, _fd, _c) = setup();
        assert_eq!(
            dt.resolve(ContainerFd(99)).unwrap_err(),
            RcError::BadDescriptor
        );
    }

    #[test]
    fn open_count_tracks() {
        let (mut ct, mut dt, fd, c) = setup();
        assert_eq!(dt.open_count(), 1);
        let fd2 = dt.open(c, &mut ct).unwrap();
        assert_eq!(dt.open_count(), 2);
        dt.close(fd, &mut ct).unwrap();
        dt.close(fd2, &mut ct).unwrap();
        assert_eq!(dt.open_count(), 0);
    }
}
