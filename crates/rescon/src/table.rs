//! The kernel-side container table: hierarchy, attributes, accounting, and
//! lifetime management (paper §4.1, §4.5, §4.6).

use simcore::trace::{self, ChargeKind, TraceEventKind};
use simcore::{Arena, Idx, Nanos};

use crate::attrs::{Attributes, SchedPolicy};
use crate::error::{RcError, Result};
use crate::usage::{MemClass, ResourceUsage};

/// Tolerance used when validating that sibling fixed shares sum to at most 1.
const SHARE_EPSILON: f64 = 1e-9;

/// One resource container (paper §4.1).
///
/// Fields are private; all mutation flows through [`ContainerTable`] so the
/// hierarchy invariants (acyclicity, parent/child consistency, share caps,
/// reference counts) are maintained at a single module boundary.
#[derive(Debug)]
pub struct Container {
    parent: Option<ContainerId>,
    children: Vec<ContainerId>,
    attrs: Attributes,
    usage: ResourceUsage,
    /// CPU charged to this container or any (possibly destroyed)
    /// descendant.
    subtree_cpu: Nanos,
    /// Disk service time charged to this container or any (possibly
    /// destroyed) descendant.
    subtree_disk: Nanos,
    /// Link wire time charged to this container or any (possibly
    /// destroyed) descendant.
    subtree_tx: Nanos,
    /// Memory currently charged to this container or any live descendant.
    subtree_mem: u64,
    /// Open file descriptors referring to this container, across all
    /// processes (§4.6: containers are visible as descriptors).
    descriptor_refs: u32,
    /// Threads whose *resource binding* currently names this container.
    thread_bindings: u32,
    /// Sockets or files bound to this container.
    socket_bindings: u32,
    created_at: Nanos,
}

/// Identifier of a container; generation-checked.
pub type ContainerId = Idx<Container>;

impl Container {
    /// Returns the container's parent, or `None` for the root and for
    /// orphans whose parent was destroyed.
    pub fn parent(&self) -> Option<ContainerId> {
        self.parent
    }

    /// Returns the container's live children.
    pub fn children(&self) -> &[ContainerId] {
        &self.children
    }

    /// Returns the container's attributes.
    pub fn attrs(&self) -> &Attributes {
        &self.attrs
    }

    /// Returns the container's accumulated usage.
    pub fn usage(&self) -> &ResourceUsage {
        &self.usage
    }

    /// Returns `true` if the container has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Returns the virtual time at which the container was created.
    pub fn created_at(&self) -> Nanos {
        self.created_at
    }

    /// Returns the number of open descriptors referring to this container.
    pub fn descriptor_refs(&self) -> u32 {
        self.descriptor_refs
    }

    /// Returns the number of threads currently resource-bound here.
    pub fn thread_bindings(&self) -> u32 {
        self.thread_bindings
    }

    /// Returns the number of sockets/files currently bound here.
    pub fn socket_bindings(&self) -> u32 {
        self.socket_bindings
    }

    fn total_refs(&self) -> u32 {
        self.descriptor_refs + self.thread_bindings + self.socket_bindings
    }
}

/// The system-wide table of resource containers.
///
/// The table owns every container, maintains the hierarchy (§4.5), performs
/// resource accounting on behalf of the kernel, and destroys containers when
/// their last reference is dropped (§4.6: "once there are no such
/// descriptors, and no threads with resource bindings, to the container, it
/// is destroyed").
///
/// In *strict* mode (the default) the table enforces the paper's prototype
/// restrictions (§5.1): only fixed-share containers may have children, and
/// threads may bind only to leaf containers. Disabling strict mode permits
/// the general model of §4.
///
/// # Examples
///
/// ```
/// use rescon::{Attributes, ContainerTable};
///
/// let mut t = ContainerTable::new();
/// let root = t.root();
/// let class = t
///     .create(Some(root), Attributes::fixed_share(0.3).named("cgi"))
///     .unwrap();
/// let request = t.create(Some(class), Attributes::time_shared(10)).unwrap();
/// assert_eq!(t.parent(request).unwrap(), Some(class));
/// assert!((t.effective_share(class).unwrap() - 0.3).abs() < 1e-12);
/// ```
pub struct ContainerTable {
    arena: Arena<Container>,
    root: ContainerId,
    strict: bool,
    /// Orphans: live containers with `parent == None` other than the root.
    floating: Vec<ContainerId>,
    /// Total containers ever created (for stats/tests).
    created_count: u64,
    /// Total containers destroyed (for stats/tests).
    destroyed_count: u64,
    /// CPU history of destroyed parentless containers (kept so that global
    /// accounting conserves: root subtree + floating subtrees + reaped =
    /// total charged).
    reaped_cpu: Nanos,
    /// Disk-time history of destroyed parentless containers (same
    /// conservation role as `reaped_cpu`).
    reaped_disk: Nanos,
    /// Link wire-time history of destroyed parentless containers (same
    /// conservation role as `reaped_cpu`).
    reaped_tx: Nanos,
}

impl Default for ContainerTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ContainerTable {
    /// Creates a table holding only the root (system) container.
    pub fn new() -> Self {
        Self::with_strict(true)
    }

    /// Creates a table, choosing whether to enforce the prototype
    /// restrictions of paper §5.1.
    pub fn with_strict(strict: bool) -> Self {
        let mut arena = Arena::new();
        let root = arena.insert(Container {
            parent: None,
            children: Vec::new(),
            attrs: Attributes::fixed_share(1.0).named("root"),
            usage: ResourceUsage::new(),
            subtree_cpu: Nanos::ZERO,
            subtree_disk: Nanos::ZERO,
            subtree_tx: Nanos::ZERO,
            subtree_mem: 0,
            // The root is permanently referenced by the kernel itself.
            descriptor_refs: 1,
            thread_bindings: 0,
            socket_bindings: 0,
            created_at: Nanos::ZERO,
        });
        ContainerTable {
            arena,
            root,
            strict,
            floating: Vec::new(),
            created_count: 1,
            destroyed_count: 0,
            reaped_cpu: Nanos::ZERO,
            reaped_disk: Nanos::ZERO,
            reaped_tx: Nanos::ZERO,
        }
    }

    /// Returns the root (system) container.
    pub fn root(&self) -> ContainerId {
        self.root
    }

    /// Returns `true` if prototype restrictions are enforced.
    pub fn is_strict(&self) -> bool {
        self.strict
    }

    /// Returns the number of live containers.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Returns `true` if only the root container exists.
    pub fn is_empty(&self) -> bool {
        self.arena.len() <= 1
    }

    /// Returns the number of containers ever created (including destroyed).
    pub fn created_count(&self) -> u64 {
        self.created_count
    }

    /// Returns the number of containers destroyed so far.
    pub fn destroyed_count(&self) -> u64 {
        self.destroyed_count
    }

    /// Returns the CPU history that belonged to destroyed containers with
    /// no parent (their history had no ancestor to remain charged to).
    pub fn reaped_cpu(&self) -> Nanos {
        self.reaped_cpu
    }

    /// Returns the disk-time history that belonged to destroyed containers
    /// with no parent.
    pub fn reaped_disk(&self) -> Nanos {
        self.reaped_disk
    }

    /// Returns the link wire-time history that belonged to destroyed
    /// containers with no parent.
    pub fn reaped_tx(&self) -> Nanos {
        self.reaped_tx
    }

    /// Returns `true` if `id` names a live container.
    pub fn contains(&self, id: ContainerId) -> bool {
        self.arena.contains(id)
    }

    fn get(&self, id: ContainerId) -> Result<&Container> {
        self.arena.get(id).ok_or(RcError::NotFound)
    }

    fn get_mut(&mut self, id: ContainerId) -> Result<&mut Container> {
        self.arena.get_mut(id).ok_or(RcError::NotFound)
    }

    /// Creates a container (§4.6 "Creating a new container") at virtual
    /// time zero; see [`ContainerTable::create_at`] for timestamped
    /// creation.
    ///
    /// The new container starts with one descriptor reference, representing
    /// the descriptor returned to the creating process.
    pub fn create(
        &mut self,
        parent: Option<ContainerId>,
        attrs: Attributes,
    ) -> Result<ContainerId> {
        self.create_at(parent, attrs, Nanos::ZERO)
    }

    /// Creates a container at virtual time `now`.
    ///
    /// `parent == None` creates the container directly under the root.
    pub fn create_at(
        &mut self,
        parent: Option<ContainerId>,
        attrs: Attributes,
        now: Nanos,
    ) -> Result<ContainerId> {
        attrs.validate()?;
        let parent = parent.unwrap_or(self.root);
        self.check_can_parent(parent)?;
        if let Some(share) = attrs.policy.share() {
            self.check_share_capacity(parent, share, None)?;
        }
        let id = self.arena.insert(Container {
            parent: Some(parent),
            children: Vec::new(),
            attrs,
            usage: ResourceUsage::new(),
            subtree_cpu: Nanos::ZERO,
            subtree_disk: Nanos::ZERO,
            subtree_tx: Nanos::ZERO,
            subtree_mem: 0,
            descriptor_refs: 1,
            thread_bindings: 0,
            socket_bindings: 0,
            created_at: now,
        });
        self.created_count += 1;
        self.arena[parent].children.push(id);
        trace::emit_at(now, || TraceEventKind::ContainerCreate {
            container: id.as_u64(),
            parent: parent.as_u64(),
        });
        Ok(id)
    }

    fn check_can_parent(&self, parent: ContainerId) -> Result<()> {
        let p = self.get(parent)?;
        if self.strict && p.attrs.policy.share().is_none() {
            return Err(RcError::ParentNotFixedShare);
        }
        Ok(())
    }

    /// Validates that adding a child with `new_share` under `parent` (while
    /// ignoring `exclude`, used during reparenting) keeps the sibling share
    /// sum at or below 1.
    fn check_share_capacity(
        &self,
        parent: ContainerId,
        new_share: f64,
        exclude: Option<ContainerId>,
    ) -> Result<()> {
        let p = self.get(parent)?;
        let mut sum = new_share;
        for &child in &p.children {
            if Some(child) == exclude {
                continue;
            }
            if let Some(s) = self.arena[child].attrs.policy.share() {
                sum += s;
            }
        }
        if sum > 1.0 + SHARE_EPSILON {
            Err(RcError::ShareOvercommit)
        } else {
            Ok(())
        }
    }

    /// Changes a container's parent (§4.6 "Set a container's parent").
    ///
    /// `None` detaches the container; detached ("floating") containers are
    /// scheduled as if they were children of the root but are not destroyed
    /// with it.
    pub fn set_parent(&mut self, id: ContainerId, new_parent: Option<ContainerId>) -> Result<()> {
        if id == self.root {
            return Err(RcError::Cycle);
        }
        self.get(id)?;
        if let Some(np) = new_parent {
            // Walking up from `np` must not reach `id`.
            let mut cursor = Some(np);
            while let Some(c) = cursor {
                if c == id {
                    return Err(RcError::Cycle);
                }
                cursor = self.get(c)?.parent;
            }
            self.check_can_parent(np)?;
            if let Some(share) = self.get(id)?.attrs.policy.share() {
                self.check_share_capacity(np, share, Some(id))?;
            }
        }
        // Detach: remove contributions from the old ancestor chain.
        let (sub_cpu, sub_disk, sub_tx, sub_mem) = {
            let c = self.get(id)?;
            (c.subtree_cpu, c.subtree_disk, c.subtree_tx, c.subtree_mem)
        };
        let old_parent = self.get(id)?.parent;
        if let Some(op) = old_parent {
            self.arena[op].children.retain(|&c| c != id);
            self.propagate_detach(op, sub_cpu, sub_disk, sub_tx, sub_mem);
        } else {
            self.floating.retain(|&c| c != id);
        }
        // Attach.
        self.arena[id].parent = new_parent;
        match new_parent {
            Some(np) => {
                self.arena[np].children.push(id);
                self.propagate_attach(np, sub_cpu, sub_disk, sub_tx, sub_mem);
            }
            None => self.floating.push(id),
        }
        Ok(())
    }

    fn propagate_detach(
        &mut self,
        from: ContainerId,
        cpu: Nanos,
        disk: Nanos,
        tx: Nanos,
        mem: u64,
    ) {
        let mut cursor = Some(from);
        while let Some(c) = cursor {
            let node = &mut self.arena[c];
            node.subtree_cpu = node.subtree_cpu.saturating_sub(cpu);
            node.subtree_disk = node.subtree_disk.saturating_sub(disk);
            node.subtree_tx = node.subtree_tx.saturating_sub(tx);
            node.subtree_mem = node.subtree_mem.saturating_sub(mem);
            cursor = node.parent;
        }
    }

    fn propagate_attach(
        &mut self,
        from: ContainerId,
        cpu: Nanos,
        disk: Nanos,
        tx: Nanos,
        mem: u64,
    ) {
        let mut cursor = Some(from);
        while let Some(c) = cursor {
            let node = &mut self.arena[c];
            node.subtree_cpu = node.subtree_cpu.saturating_add(cpu);
            node.subtree_disk = node.subtree_disk.saturating_add(disk);
            node.subtree_tx = node.subtree_tx.saturating_add(tx);
            node.subtree_mem += mem;
            cursor = node.parent;
        }
    }

    /// Returns a container's parent.
    pub fn parent(&self, id: ContainerId) -> Result<Option<ContainerId>> {
        Ok(self.get(id)?.parent)
    }

    /// Returns a container's children.
    pub fn children(&self, id: ContainerId) -> Result<&[ContainerId]> {
        Ok(self.get(id)?.children.as_slice())
    }

    /// Returns a view of the container record.
    pub fn container(&self, id: ContainerId) -> Result<&Container> {
        self.get(id)
    }

    /// Returns the top-level containers: the root's children plus any
    /// floating orphans.
    pub fn top_level(&self) -> Vec<ContainerId> {
        let mut v = self.arena[self.root].children.clone();
        v.extend_from_slice(&self.floating);
        v
    }

    /// Returns the floating orphans: live containers (other than the root)
    /// whose parent has been destroyed or explicitly cleared.
    pub fn floating(&self) -> &[ContainerId] {
        &self.floating
    }

    /// Returns the chain of ancestors of `id`, nearest first (excluding
    /// `id` itself).
    pub fn ancestors(&self, id: ContainerId) -> Vec<ContainerId> {
        let mut out = Vec::new();
        let mut cursor = self.arena.get(id).and_then(|c| c.parent);
        while let Some(c) = cursor {
            out.push(c);
            cursor = self.arena.get(c).and_then(|n| n.parent);
        }
        out
    }

    /// Returns the container's attributes (§4.6 "Container attributes").
    pub fn attrs(&self, id: ContainerId) -> Result<&Attributes> {
        Ok(&self.get(id)?.attrs)
    }

    /// Looks up a live container by its attribute name (first match in id
    /// order; names are a labelling convenience, not enforced unique).
    /// Monitoring layers use this to resolve per-tenant declarations —
    /// e.g. a latency-SLO spec naming "tenant-a" — against the hierarchy.
    pub fn find_by_name(&self, name: &str) -> Option<ContainerId> {
        self.iter()
            .find(|(_, c)| c.attrs().name.as_deref() == Some(name))
            .map(|(id, _)| id)
    }

    /// Replaces the container's attributes, revalidating hierarchy
    /// constraints (§4.6).
    pub fn set_attrs(&mut self, id: ContainerId, attrs: Attributes) -> Result<()> {
        attrs.validate()?;
        let c = self.get(id)?;
        if self.strict && !c.children.is_empty() && attrs.policy.share().is_none() {
            return Err(RcError::ParentNotFixedShare);
        }
        if let Some(share) = attrs.policy.share() {
            if let Some(parent) = c.parent {
                self.check_share_capacity(parent, share, Some(id))?;
            }
        }
        self.get_mut(id)?.attrs = attrs;
        Ok(())
    }

    /// Returns the scheduling policy of a container.
    pub fn policy(&self, id: ContainerId) -> Result<SchedPolicy> {
        Ok(self.get(id)?.attrs.policy)
    }

    /// Returns a copy of the usage record (§4.6 "Container usage
    /// information").
    pub fn usage(&self, id: ContainerId) -> Result<ResourceUsage> {
        Ok(self.get(id)?.usage)
    }

    /// Returns the cumulative CPU charged to the container's subtree,
    /// including already-destroyed descendants.
    pub fn subtree_cpu(&self, id: ContainerId) -> Result<Nanos> {
        Ok(self.get(id)?.subtree_cpu)
    }

    /// Returns the memory currently charged to the container's subtree.
    pub fn subtree_mem(&self, id: ContainerId) -> Result<u64> {
        Ok(self.get(id)?.subtree_mem)
    }

    /// Returns the cumulative disk service time charged to the container's
    /// subtree, including already-destroyed descendants.
    pub fn subtree_disk(&self, id: ContainerId) -> Result<Nanos> {
        Ok(self.get(id)?.subtree_disk)
    }

    /// Returns the cumulative link wire time charged to the container's
    /// subtree, including already-destroyed descendants.
    pub fn subtree_tx(&self, id: ContainerId) -> Result<Nanos> {
        Ok(self.get(id)?.subtree_tx)
    }

    /// Charges user-mode CPU time to a container and its ancestors'
    /// subtree counters.
    pub fn charge_cpu(&mut self, id: ContainerId, dt: Nanos) -> Result<()> {
        self.charge_cpu_mode(id, dt, false)
    }

    /// Charges kernel-mode CPU time (protocol processing, syscall
    /// execution) to a container.
    pub fn charge_cpu_kernel(&mut self, id: ContainerId, dt: Nanos) -> Result<()> {
        self.charge_cpu_mode(id, dt, true)
    }

    fn charge_cpu_mode(&mut self, id: ContainerId, dt: Nanos, kernel: bool) -> Result<()> {
        let c = self.get_mut(id)?;
        c.usage.charge_cpu(dt, kernel);
        trace::emit(|| TraceEventKind::Charge {
            container: id.as_u64(),
            kind: if kernel {
                ChargeKind::KernelCpu
            } else {
                ChargeKind::Cpu
            },
            amount: dt.as_nanos(),
        });
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = &mut self.arena[cur];
            node.subtree_cpu = node.subtree_cpu.saturating_add(dt);
            cursor = node.parent;
        }
        Ok(())
    }

    /// Charges a completed disk request (service time `dt`, `bytes`
    /// transferred) to a container and its ancestors' subtree counters.
    pub fn charge_disk(&mut self, id: ContainerId, dt: Nanos, bytes: u64) -> Result<()> {
        let c = self.get_mut(id)?;
        c.usage.charge_disk(dt, bytes);
        trace::emit(|| TraceEventKind::Charge {
            container: id.as_u64(),
            kind: ChargeKind::Disk,
            amount: dt.as_nanos(),
        });
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = &mut self.arena[cur];
            node.subtree_disk = node.subtree_disk.saturating_add(dt);
            cursor = node.parent;
        }
        Ok(())
    }

    /// Charges a received packet to a container.
    pub fn charge_rx(&mut self, id: ContainerId, bytes: u64) -> Result<()> {
        self.get_mut(id)?.usage.charge_rx(bytes);
        trace::emit(|| TraceEventKind::Charge {
            container: id.as_u64(),
            kind: ChargeKind::RxBytes,
            amount: bytes,
        });
        Ok(())
    }

    /// Charges a transmitted packet to a container.
    pub fn charge_tx(&mut self, id: ContainerId, bytes: u64) -> Result<()> {
        self.get_mut(id)?.usage.charge_tx(bytes);
        trace::emit(|| TraceEventKind::Charge {
            container: id.as_u64(),
            kind: ChargeKind::TxBytes,
            amount: bytes,
        });
        Ok(())
    }

    /// Charges link wire time to a container and its ancestors' subtree
    /// counters (finite-bandwidth transmit links only).
    pub fn charge_tx_time(&mut self, id: ContainerId, dt: Nanos) -> Result<()> {
        self.get_mut(id)?.usage.charge_tx_time(dt);
        trace::emit(|| TraceEventKind::Charge {
            container: id.as_u64(),
            kind: ChargeKind::TxTime,
            amount: dt.as_nanos(),
        });
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = &mut self.arena[cur];
            node.subtree_tx = node.subtree_tx.saturating_add(dt);
            cursor = node.parent;
        }
        Ok(())
    }

    /// Increments the syscall counter of a container.
    pub fn charge_syscall(&mut self, id: ContainerId) -> Result<()> {
        self.get_mut(id)?.usage.syscalls += 1;
        Ok(())
    }

    /// Charges untagged ([`MemClass::Other`]) memory to a container,
    /// enforcing the memory limits of the container and every ancestor
    /// against their subtree totals.
    pub fn charge_mem(&mut self, id: ContainerId, bytes: u64) -> Result<()> {
        self.charge_mem_class(id, MemClass::Other, bytes)
    }

    /// Dry-run of the limit validation [`ContainerTable::charge_mem_class`]
    /// performs: would charging `bytes` to `id` fit under every limit on
    /// the ancestor chain? Emits nothing and mutates nothing, so reclaim
    /// drivers can poll it between steals.
    ///
    /// # Errors
    ///
    /// [`RcError::LimitExceeded`] naming the nearest refusing container,
    /// its limit, and its current subtree usage.
    pub fn check_mem(&self, id: ContainerId, bytes: u64) -> Result<()> {
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = self.get(cur)?;
            if let Some(limit) = node.attrs.mem_limit {
                if node.subtree_mem + bytes > limit {
                    return Err(RcError::LimitExceeded {
                        container: cur.as_u64(),
                        limit,
                        used: node.subtree_mem,
                    });
                }
            }
            cursor = node.parent;
        }
        Ok(())
    }

    /// Charges `bytes` of `class` memory to a container, enforcing the
    /// memory limits of the container and every ancestor against their
    /// subtree totals. A refusal identifies the refusing ancestor in both
    /// the error and a [`TraceEventKind::MemRefused`] trace event.
    pub fn charge_mem_class(&mut self, id: ContainerId, class: MemClass, bytes: u64) -> Result<()> {
        // Validate the whole chain before mutating anything.
        if let Err(e) = self.check_mem(id, bytes) {
            if let RcError::LimitExceeded {
                container,
                limit,
                used,
            } = e
            {
                trace::emit(|| TraceEventKind::MemRefused {
                    container: id.as_u64(),
                    refusing: container,
                    limit,
                    used,
                    wanted: bytes,
                });
            }
            return Err(e);
        }
        self.get_mut(id)?.usage.charge_mem_class(bytes, class);
        trace::emit(|| TraceEventKind::Charge {
            container: id.as_u64(),
            kind: ChargeKind::Mem,
            amount: bytes,
        });
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = &mut self.arena[cur];
            node.subtree_mem += bytes;
            cursor = node.parent;
        }
        Ok(())
    }

    /// Releases untagged ([`MemClass::Other`]) memory previously charged
    /// with [`ContainerTable::charge_mem`].
    pub fn release_mem(&mut self, id: ContainerId, bytes: u64) -> Result<()> {
        self.release_mem_class(id, MemClass::Other, bytes)
    }

    /// Releases `bytes` of `class` memory previously charged with
    /// [`ContainerTable::charge_mem_class`].
    pub fn release_mem_class(
        &mut self,
        id: ContainerId,
        class: MemClass,
        bytes: u64,
    ) -> Result<()> {
        self.get_mut(id)?.usage.release_mem_class(bytes, class);
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = &mut self.arena[cur];
            node.subtree_mem = node.subtree_mem.saturating_sub(bytes);
            cursor = node.parent;
        }
        Ok(())
    }

    /// Returns `true` if `id` is `root` or a live descendant of `root`
    /// (used by reclaim to restrict stealing to the violating subtree).
    pub fn in_subtree(&self, id: ContainerId, root: ContainerId) -> bool {
        if !self.arena.contains(id) {
            return false;
        }
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            if cur == root {
                return true;
            }
            cursor = self.arena.get(cur).and_then(|c| c.parent);
        }
        false
    }

    /// Returns the fraction of the whole machine guaranteed to this
    /// container: the product of fixed shares along the path to the root,
    /// where time-shared hops contribute no guarantee (returned as the
    /// guarantee of the nearest fixed-share ancestor chain).
    pub fn effective_share(&self, id: ContainerId) -> Result<f64> {
        let mut share = 1.0;
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = self.get(cur)?;
            if let Some(s) = node.attrs.policy.share() {
                share *= s;
            }
            cursor = node.parent;
        }
        Ok(share)
    }

    /// Returns the chain of `(container, net weight, rate cap)` triples
    /// from the root down to `id` (root first, `id` last). The transmit
    /// link scheduler uses this path to place the container in its class
    /// hierarchy, with each node's bandwidth divided among its active
    /// children in proportion to their weights — the same parent/child
    /// interpretation the multi-level CPU scheduler gives fixed shares.
    pub fn net_weight_path(&self, id: ContainerId) -> Result<Vec<(u64, u32, Option<u64>)>> {
        let leaf = self.get(id)?;
        let mut path = vec![(
            id.as_u64(),
            leaf.attrs.qos.weight.max(1),
            leaf.attrs.qos.rate_bps,
        )];
        let mut cursor = leaf.parent;
        while let Some(cur) = cursor {
            let node = self.get(cur)?;
            path.push((
                cur.as_u64(),
                node.attrs.qos.weight.max(1),
                node.attrs.qos.rate_bps,
            ));
            cursor = node.parent;
        }
        path.reverse();
        Ok(path)
    }

    /// Returns the tightest `sockbuf_limit` along the container's ancestor
    /// chain (paper §4.1: network QoS attributes), or `None` if no
    /// container on the path sets one.
    pub fn effective_sockbuf_limit(&self, id: ContainerId) -> Result<Option<u64>> {
        let mut limit: Option<u64> = None;
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            let node = self.get(cur)?;
            if let Some(l) = node.attrs.qos.sockbuf_limit {
                limit = Some(limit.map_or(l, |cur| cur.min(l)));
            }
            cursor = node.parent;
        }
        Ok(limit)
    }

    // --- Reference counting and destruction (§4.6 "Container release") ---

    /// Adds a descriptor reference (a process opened or received a handle).
    pub fn add_descriptor_ref(&mut self, id: ContainerId) -> Result<()> {
        self.get_mut(id)?.descriptor_refs += 1;
        Ok(())
    }

    /// Drops a descriptor reference; destroys the container when the last
    /// reference of any kind is gone. Returns `true` if destroyed.
    pub fn drop_descriptor_ref(&mut self, id: ContainerId) -> Result<bool> {
        let c = self.get_mut(id)?;
        debug_assert!(c.descriptor_refs > 0, "descriptor refcount underflow");
        c.descriptor_refs = c.descriptor_refs.saturating_sub(1);
        self.maybe_destroy(id)
    }

    /// Records that a thread set its resource binding to this container.
    ///
    /// In strict mode the container must be a leaf (§5.1: "threads can only
    /// be bound to leaf-level containers").
    pub fn bind_thread(&mut self, id: ContainerId) -> Result<()> {
        let strict = self.strict;
        let c = self.get_mut(id)?;
        if strict && !c.children.is_empty() {
            return Err(RcError::NotALeaf);
        }
        c.thread_bindings += 1;
        Ok(())
    }

    /// Records that a thread's resource binding left this container.
    /// Returns `true` if this destroyed the container.
    pub fn unbind_thread(&mut self, id: ContainerId) -> Result<bool> {
        let c = self.get_mut(id)?;
        debug_assert!(c.thread_bindings > 0, "thread binding underflow");
        c.thread_bindings = c.thread_bindings.saturating_sub(1);
        self.maybe_destroy(id)
    }

    /// Records that a socket or file descriptor was bound to this container
    /// (§4.6 "Binding a socket or file to a container").
    pub fn bind_socket(&mut self, id: ContainerId) -> Result<()> {
        let strict = self.strict;
        let c = self.get_mut(id)?;
        if strict && !c.children.is_empty() {
            return Err(RcError::NotALeaf);
        }
        c.socket_bindings += 1;
        c.usage.sockets += 1;
        Ok(())
    }

    /// Records that a socket binding was removed. Returns `true` if this
    /// destroyed the container.
    pub fn unbind_socket(&mut self, id: ContainerId) -> Result<bool> {
        let c = self.get_mut(id)?;
        debug_assert!(c.socket_bindings > 0, "socket binding underflow");
        c.socket_bindings = c.socket_bindings.saturating_sub(1);
        c.usage.sockets = c.usage.sockets.saturating_sub(1);
        self.maybe_destroy(id)
    }

    fn maybe_destroy(&mut self, id: ContainerId) -> Result<bool> {
        if id == self.root {
            return Ok(false);
        }
        if self.get(id)?.total_refs() > 0 {
            return Ok(false);
        }
        // Orphan the children: §4.6 "If the parent P of a container C is
        // destroyed, C's parent is set to 'no parent'." The orphan takes its
        // subtree accounting with it (same semantics as `set_parent`), so
        // total charged CPU always equals root-subtree + floating-subtree
        // CPU; the dying container's *own* history stays with its old
        // ancestors.
        let children = std::mem::take(&mut self.arena[id].children);
        for child in children {
            let (cpu, disk, tx, mem) = {
                let c = &self.arena[child];
                (c.subtree_cpu, c.subtree_disk, c.subtree_tx, c.subtree_mem)
            };
            self.arena[child].parent = None;
            self.floating.push(child);
            self.propagate_detach(id, cpu, disk, tx, mem);
        }
        // Detach from the parent.
        let parent = self.arena[id].parent;
        let own_mem = self.arena[id].usage.mem_bytes;
        if parent.is_none() {
            // No ancestor keeps this history; record it at table level so
            // accounting still conserves.
            self.reaped_cpu = self.reaped_cpu.saturating_add(self.arena[id].subtree_cpu);
            self.reaped_disk = self.reaped_disk.saturating_add(self.arena[id].subtree_disk);
            self.reaped_tx = self.reaped_tx.saturating_add(self.arena[id].subtree_tx);
        }
        match parent {
            Some(p) => {
                self.arena[p].children.retain(|&c| c != id);
                let mut cursor = Some(p);
                while let Some(cur) = cursor {
                    let node = &mut self.arena[cur];
                    node.subtree_mem = node.subtree_mem.saturating_sub(own_mem);
                    cursor = node.parent;
                }
            }
            None => self.floating.retain(|&c| c != id),
        }
        self.arena.remove(id);
        self.destroyed_count += 1;
        trace::emit(|| TraceEventKind::ContainerDestroy {
            container: id.as_u64(),
        });
        Ok(true)
    }

    /// Iterates over all live containers.
    pub fn iter(&self) -> impl Iterator<Item = (ContainerId, &Container)> {
        self.arena.iter()
    }

    /// Verifies the structural invariants of the table; used by tests and
    /// property tests. Panics with a description on violation.
    pub fn check_invariants(&self) {
        for (id, c) in self.arena.iter() {
            // Parent/child consistency.
            if let Some(p) = c.parent {
                let parent = self.arena.get(p).expect("parent must be live");
                assert!(
                    parent.children.contains(&id),
                    "parent {p:?} does not list child {id:?}"
                );
            } else if id != self.root {
                assert!(
                    self.floating.contains(&id),
                    "orphan {id:?} missing from floating list"
                );
            }
            for &child in &c.children {
                let ch = self.arena.get(child).expect("child must be live");
                assert_eq!(ch.parent, Some(id), "child {child:?} parent mismatch");
            }
            // Acyclicity: walking up must terminate within the arena size.
            let mut steps = 0;
            let mut cursor = c.parent;
            while let Some(cur) = cursor {
                steps += 1;
                assert!(steps <= self.arena.len(), "cycle detected at {id:?}");
                cursor = self.arena[cur].parent;
            }
            // Share caps.
            let sum: f64 = c
                .children
                .iter()
                .filter_map(|&ch| self.arena[ch].attrs.policy.share())
                .sum();
            assert!(
                sum <= 1.0 + SHARE_EPSILON,
                "children of {id:?} overcommitted: {sum}"
            );
            // Subtree CPU dominates own CPU.
            assert!(
                c.subtree_cpu >= c.usage.cpu,
                "subtree cpu < own cpu at {id:?}"
            );
            // Subtree disk time dominates own disk time.
            assert!(
                c.subtree_disk >= c.usage.disk_time,
                "subtree disk < own disk at {id:?}"
            );
            // Subtree link time dominates own link time.
            assert!(
                c.subtree_tx >= c.usage.tx_time,
                "subtree tx < own tx at {id:?}"
            );
        }
        for &f in &self.floating {
            assert!(self.arena.contains(f), "floating list has dead id {f:?}");
            assert!(
                self.arena[f].parent.is_none(),
                "floating container {f:?} has a parent"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ContainerTable {
        ContainerTable::new()
    }

    #[test]
    fn root_exists_and_is_permanent() {
        let mut t = table();
        let root = t.root();
        assert!(t.contains(root));
        assert_eq!(t.len(), 1);
        // Dropping the kernel's ref must not destroy the root.
        assert!(!t.drop_descriptor_ref(root).unwrap());
        assert!(t.contains(root));
    }

    #[test]
    fn create_and_lookup() {
        let mut t = table();
        let c = t.create(None, Attributes::time_shared(7)).unwrap();
        assert_eq!(t.parent(c).unwrap(), Some(t.root()));
        assert_eq!(t.attrs(c).unwrap().policy.priority(), Some(7));
        assert!(t.children(t.root()).unwrap().contains(&c));
        t.check_invariants();
    }

    #[test]
    fn strict_mode_rejects_timeshare_parent() {
        let mut t = table();
        let ts = t.create(None, Attributes::time_shared(5)).unwrap();
        let err = t.create(Some(ts), Attributes::time_shared(5)).unwrap_err();
        assert_eq!(err, RcError::ParentNotFixedShare);
    }

    #[test]
    fn general_mode_allows_timeshare_parent() {
        let mut t = ContainerTable::with_strict(false);
        let ts = t.create(None, Attributes::time_shared(5)).unwrap();
        assert!(t.create(Some(ts), Attributes::time_shared(5)).is_ok());
        t.check_invariants();
    }

    #[test]
    fn share_overcommit_rejected() {
        let mut t = table();
        t.create(None, Attributes::fixed_share(0.7)).unwrap();
        assert_eq!(
            t.create(None, Attributes::fixed_share(0.4)).unwrap_err(),
            RcError::ShareOvercommit
        );
        assert!(t.create(None, Attributes::fixed_share(0.3)).is_ok());
        t.check_invariants();
    }

    #[test]
    fn mixed_share_and_timeshare_children_allowed() {
        let mut t = table();
        t.create(None, Attributes::fixed_share(0.9)).unwrap();
        // Time-shared children do not count toward the share cap.
        for _ in 0..5 {
            t.create(None, Attributes::time_shared(10)).unwrap();
        }
        t.check_invariants();
    }

    #[test]
    fn cycle_rejected_on_reparent() {
        let mut t = table();
        let a = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let b = t.create(Some(a), Attributes::fixed_share(0.5)).unwrap();
        let c = t.create(Some(b), Attributes::fixed_share(0.5)).unwrap();
        assert_eq!(t.set_parent(a, Some(c)).unwrap_err(), RcError::Cycle);
        assert_eq!(t.set_parent(a, Some(a)).unwrap_err(), RcError::Cycle);
        assert_eq!(t.set_parent(t.root(), Some(a)).unwrap_err(), RcError::Cycle);
        t.check_invariants();
    }

    #[test]
    fn reparent_moves_subtree_accounting() {
        let mut t = table();
        let a = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let b = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let child = t.create(Some(a), Attributes::time_shared(1)).unwrap();
        t.charge_cpu(child, Nanos::from_micros(100)).unwrap();
        assert_eq!(t.subtree_cpu(a).unwrap(), Nanos::from_micros(100));
        assert_eq!(t.subtree_cpu(b).unwrap(), Nanos::ZERO);
        t.set_parent(child, Some(b)).unwrap();
        assert_eq!(t.subtree_cpu(a).unwrap(), Nanos::ZERO);
        assert_eq!(t.subtree_cpu(b).unwrap(), Nanos::from_micros(100));
        // Root keeps the total either way.
        assert_eq!(t.subtree_cpu(t.root()).unwrap(), Nanos::from_micros(100));
        t.check_invariants();
    }

    #[test]
    fn detach_to_floating() {
        let mut t = table();
        let a = t.create(None, Attributes::time_shared(3)).unwrap();
        t.set_parent(a, None).unwrap();
        assert_eq!(t.parent(a).unwrap(), None);
        assert!(t.top_level().contains(&a));
        t.check_invariants();
    }

    #[test]
    fn charge_propagates_to_ancestors() {
        let mut t = table();
        let a = t.create(None, Attributes::fixed_share(0.6)).unwrap();
        let b = t.create(Some(a), Attributes::fixed_share(0.5)).unwrap();
        let c = t.create(Some(b), Attributes::time_shared(2)).unwrap();
        t.charge_cpu_kernel(c, Nanos::from_micros(50)).unwrap();
        assert_eq!(t.usage(c).unwrap().kernel_cpu, Nanos::from_micros(50));
        assert_eq!(t.usage(b).unwrap().cpu, Nanos::ZERO);
        assert_eq!(t.subtree_cpu(b).unwrap(), Nanos::from_micros(50));
        assert_eq!(t.subtree_cpu(a).unwrap(), Nanos::from_micros(50));
        assert_eq!(t.subtree_cpu(t.root()).unwrap(), Nanos::from_micros(50));
    }

    #[test]
    fn destroy_when_last_ref_dropped() {
        let mut t = table();
        let c = t.create(None, Attributes::time_shared(1)).unwrap();
        t.bind_thread(c).unwrap();
        // Still referenced by the thread binding.
        assert!(!t.drop_descriptor_ref(c).unwrap());
        assert!(t.contains(c));
        assert!(t.unbind_thread(c).unwrap());
        assert!(!t.contains(c));
        assert_eq!(t.destroyed_count(), 1);
        t.check_invariants();
    }

    #[test]
    fn children_orphaned_on_parent_destroy() {
        let mut t = table();
        let p = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let c = t.create(Some(p), Attributes::time_shared(1)).unwrap();
        assert!(t.drop_descriptor_ref(p).unwrap());
        assert!(!t.contains(p));
        assert!(t.contains(c));
        assert_eq!(t.parent(c).unwrap(), None);
        assert!(t.top_level().contains(&c));
        t.check_invariants();
    }

    #[test]
    fn stale_id_errors() {
        let mut t = table();
        let c = t.create(None, Attributes::time_shared(1)).unwrap();
        t.drop_descriptor_ref(c).unwrap();
        assert_eq!(t.usage(c).unwrap_err(), RcError::NotFound);
        assert_eq!(
            t.charge_cpu(c, Nanos::from_micros(1)).unwrap_err(),
            RcError::NotFound
        );
    }

    #[test]
    fn strict_leaf_binding() {
        let mut t = table();
        let p = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let _c = t.create(Some(p), Attributes::time_shared(1)).unwrap();
        assert_eq!(t.bind_thread(p).unwrap_err(), RcError::NotALeaf);
        assert_eq!(t.bind_socket(p).unwrap_err(), RcError::NotALeaf);
    }

    #[test]
    fn effective_share_multiplies_down() {
        let mut t = table();
        let a = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let b = t.create(Some(a), Attributes::fixed_share(0.4)).unwrap();
        let c = t.create(Some(b), Attributes::time_shared(1)).unwrap();
        assert!((t.effective_share(b).unwrap() - 0.2).abs() < 1e-12);
        // Time-shared leaf inherits the guarantee of its chain.
        assert!((t.effective_share(c).unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mem_limit_enforced_on_subtree() {
        let mut t = table();
        let p = t
            .create(None, Attributes::fixed_share(0.5).with_mem_limit(1000))
            .unwrap();
        let c1 = t.create(Some(p), Attributes::time_shared(1)).unwrap();
        let c2 = t.create(Some(p), Attributes::time_shared(1)).unwrap();
        t.charge_mem(c1, 600).unwrap();
        // The refusal names the refusing ancestor and its limit/usage.
        assert_eq!(
            t.charge_mem(c2, 500).unwrap_err(),
            RcError::LimitExceeded {
                container: p.as_u64(),
                limit: 1000,
                used: 600,
            }
        );
        assert!(t.check_mem(c2, 500).is_err());
        assert!(t.check_mem(c2, 400).is_ok());
        t.charge_mem(c2, 400).unwrap();
        t.release_mem(c1, 600).unwrap();
        t.charge_mem(c2, 600).unwrap();
        assert_eq!(t.subtree_mem(p).unwrap(), 1000);
        t.check_invariants();
    }

    #[test]
    fn in_subtree_walks_ancestors() {
        let mut t = table();
        let p = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let c = t.create(Some(p), Attributes::time_shared(1)).unwrap();
        let other = t.create(None, Attributes::time_shared(1)).unwrap();
        assert!(t.in_subtree(c, p));
        assert!(t.in_subtree(p, p));
        assert!(t.in_subtree(c, t.root()));
        assert!(!t.in_subtree(other, p));
        assert!(!t.in_subtree(p, c));
    }

    #[test]
    fn socket_binding_counts_in_usage() {
        let mut t = table();
        let c = t.create(None, Attributes::time_shared(1)).unwrap();
        t.bind_socket(c).unwrap();
        t.bind_socket(c).unwrap();
        assert_eq!(t.usage(c).unwrap().sockets, 2);
        t.unbind_socket(c).unwrap();
        assert_eq!(t.usage(c).unwrap().sockets, 1);
    }

    #[test]
    fn set_attrs_validates_overcommit() {
        let mut t = table();
        let _a = t.create(None, Attributes::fixed_share(0.7)).unwrap();
        let b = t.create(None, Attributes::fixed_share(0.2)).unwrap();
        assert_eq!(
            t.set_attrs(b, Attributes::fixed_share(0.5)).unwrap_err(),
            RcError::ShareOvercommit
        );
        assert!(t.set_attrs(b, Attributes::fixed_share(0.3)).is_ok());
    }

    #[test]
    fn set_attrs_keeps_parent_capability_in_strict_mode() {
        let mut t = table();
        let p = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let _c = t.create(Some(p), Attributes::time_shared(1)).unwrap();
        assert_eq!(
            t.set_attrs(p, Attributes::time_shared(1)).unwrap_err(),
            RcError::ParentNotFixedShare
        );
    }

    #[test]
    fn ancestors_nearest_first() {
        let mut t = table();
        let a = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let b = t.create(Some(a), Attributes::fixed_share(0.5)).unwrap();
        let c = t.create(Some(b), Attributes::time_shared(1)).unwrap();
        assert_eq!(t.ancestors(c), vec![b, a, t.root()]);
        assert_eq!(t.ancestors(t.root()), Vec::<ContainerId>::new());
    }

    #[test]
    fn tx_time_propagates_and_reaps_like_disk() {
        let mut t = table();
        let a = t.create(None, Attributes::fixed_share(0.5)).unwrap();
        let c = t.create(Some(a), Attributes::time_shared(1)).unwrap();
        t.charge_tx_time(c, Nanos::from_micros(30)).unwrap();
        assert_eq!(t.usage(c).unwrap().tx_time, Nanos::from_micros(30));
        assert_eq!(t.subtree_tx(a).unwrap(), Nanos::from_micros(30));
        assert_eq!(t.subtree_tx(t.root()).unwrap(), Nanos::from_micros(30));
        // Destroying the child keeps the history with the ancestors.
        t.drop_descriptor_ref(c).unwrap();
        assert_eq!(t.subtree_tx(a).unwrap(), Nanos::from_micros(30));
        // Orphan + destroy: history moves to the reaped bucket, so
        // root-subtree + floating + reaped always equals total charged.
        t.set_parent(a, None).unwrap();
        assert_eq!(t.subtree_tx(t.root()).unwrap(), Nanos::ZERO);
        t.drop_descriptor_ref(a).unwrap();
        assert_eq!(t.reaped_tx(), Nanos::from_micros(30));
        t.check_invariants();
    }

    #[test]
    fn net_weight_path_root_first() {
        let mut t = table();
        let a = t
            .create(None, Attributes::fixed_share(0.5).with_net_weight(3))
            .unwrap();
        let b = t
            .create(Some(a), Attributes::time_shared(1).with_net_weight(2))
            .unwrap();
        assert_eq!(
            t.net_weight_path(b).unwrap(),
            vec![
                (t.root().as_u64(), 1, None),
                (a.as_u64(), 3, None),
                (b.as_u64(), 2, None)
            ]
        );
    }

    #[test]
    fn effective_sockbuf_limit_is_tightest_on_chain() {
        let mut t = table();
        let a = t
            .create(None, Attributes::fixed_share(0.5).with_sockbuf_limit(1000))
            .unwrap();
        let b = t.create(Some(a), Attributes::time_shared(1)).unwrap();
        let c = t
            .create(Some(a), Attributes::time_shared(1).with_sockbuf_limit(500))
            .unwrap();
        assert_eq!(t.effective_sockbuf_limit(b).unwrap(), Some(1000));
        assert_eq!(t.effective_sockbuf_limit(c).unwrap(), Some(500));
        let free = t.create(None, Attributes::time_shared(1)).unwrap();
        assert_eq!(t.effective_sockbuf_limit(free).unwrap(), None);
    }

    #[test]
    fn counts_track_lifecycle() {
        let mut t = table();
        let ids: Vec<_> = (0..10)
            .map(|_| t.create(None, Attributes::time_shared(1)).unwrap())
            .collect();
        assert_eq!(t.created_count(), 11); // +1 for root
        for id in ids {
            t.drop_descriptor_ref(id).unwrap();
        }
        assert_eq!(t.destroyed_count(), 10);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }
}
