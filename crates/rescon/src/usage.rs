//! Per-container resource usage accounting (paper §4.1: "The kernel
//! carefully accounts for the system resources, such as CPU time and memory,
//! consumed by a resource container").

use simcore::Nanos;

/// The kind of kernel memory a charge represents (the `simmem`
/// taxonomy). Every byte of kernel memory charged to a container is
/// tagged with one class, so pressure and reclaim can distinguish
/// memory that can be stolen back (cache pages) from memory that is
/// pinned until its owner releases it (socket buffers, protocol
/// control blocks, thread stacks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemClass {
    /// Socket receive/send buffers, charged per established connection.
    SockBuf,
    /// Per-connection protocol state (PCBs and friends).
    ConnState,
    /// Thread kernel stacks, charged on spawn and released on exit.
    ThreadStack,
    /// Buffer-cache pages; the only reclaimable class.
    CachePage,
    /// Anything else (application-reserved kernel memory, legacy
    /// untagged charges).
    Other,
}

impl MemClass {
    /// Number of memory classes (size of the per-class breakdown array).
    pub const COUNT: usize = 5;

    /// Every class, in breakdown-array order.
    pub const ALL: [MemClass; MemClass::COUNT] = [
        MemClass::SockBuf,
        MemClass::ConnState,
        MemClass::ThreadStack,
        MemClass::CachePage,
        MemClass::Other,
    ];

    /// Index of this class in a per-class breakdown array.
    pub fn index(self) -> usize {
        match self {
            MemClass::SockBuf => 0,
            MemClass::ConnState => 1,
            MemClass::ThreadStack => 2,
            MemClass::CachePage => 3,
            MemClass::Other => 4,
        }
    }

    /// Stable lower-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            MemClass::SockBuf => "sockbuf",
            MemClass::ConnState => "connstate",
            MemClass::ThreadStack => "stack",
            MemClass::CachePage => "cache",
            MemClass::Other => "other",
        }
    }

    /// Whether the kernel may steal this memory back under pressure
    /// without the owner's cooperation. Only cache pages are; everything
    /// else is pinned until explicitly released (or its principal is
    /// OOM-killed).
    pub fn reclaimable(self) -> bool {
        matches!(self, MemClass::CachePage)
    }
}

/// Accumulated resource consumption charged to one container.
///
/// `cpu` is the headline metric — every scheduling decision in the paper's
/// evaluation derives from it — but the network and memory counters are what
/// let an application (or a billing system, §4.8) understand *why* an
/// activity is expensive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// CPU time charged to this container (user and kernel mode).
    pub cpu: Nanos,
    /// CPU time charged while executing kernel-mode work (subset of `cpu`).
    pub kernel_cpu: Nanos,
    /// Packets received and processed on behalf of this container.
    pub pkts_rx: u64,
    /// Packets transmitted on behalf of this container.
    pub pkts_tx: u64,
    /// Payload bytes received.
    pub bytes_rx: u64,
    /// Payload bytes transmitted.
    pub bytes_tx: u64,
    /// Wire time the transmit link spent on this container's packets.
    /// Zero unless the kernel models a finite-bandwidth link.
    pub tx_time: Nanos,
    /// Bytes of memory currently charged (socket buffers, PCBs, buffer
    /// cache pages, ...).
    pub mem_bytes: u64,
    /// High-water mark of `mem_bytes`.
    pub mem_peak: u64,
    /// Per-[`MemClass`] breakdown of `mem_bytes`; indexed by
    /// [`MemClass::index`] and summing to `mem_bytes` as long as charges
    /// and releases use matching classes.
    pub mem_by_class: [u64; MemClass::COUNT],
    /// Disk service time (seek + rotation + transfer) charged to this
    /// container. The paper projects containers extending to "other
    /// resources, such as disk bandwidth" (§7); this is that counter.
    pub disk_time: Nanos,
    /// Disk read requests completed on behalf of this container.
    pub disk_reads: u64,
    /// Bytes transferred from disk on behalf of this container.
    pub disk_bytes: u64,
    /// Sockets currently bound to this container.
    pub sockets: u64,
    /// Container-related system calls performed against this container.
    pub syscalls: u64,
}

impl ResourceUsage {
    /// Creates a zeroed usage record.
    pub fn new() -> Self {
        ResourceUsage::default()
    }

    /// Charges CPU time; `kernel` marks kernel-mode execution.
    pub fn charge_cpu(&mut self, dt: Nanos, kernel: bool) {
        self.cpu += dt;
        if kernel {
            self.kernel_cpu += dt;
        }
    }

    /// Charges a received packet of `bytes` payload bytes.
    pub fn charge_rx(&mut self, bytes: u64) {
        self.pkts_rx += 1;
        self.bytes_rx += bytes;
    }

    /// Charges a transmitted packet of `bytes` payload bytes.
    pub fn charge_tx(&mut self, bytes: u64) {
        self.pkts_tx += 1;
        self.bytes_tx += bytes;
    }

    /// Charges wire time on the transmit link.
    pub fn charge_tx_time(&mut self, dt: Nanos) {
        self.tx_time += dt;
    }

    /// Charges `bytes` of memory; updates the peak. Untagged charges
    /// count as [`MemClass::Other`].
    pub fn charge_mem(&mut self, bytes: u64) {
        self.charge_mem_class(bytes, MemClass::Other);
    }

    /// Charges `bytes` of `class` memory; updates the peak.
    pub fn charge_mem_class(&mut self, bytes: u64, class: MemClass) {
        self.mem_bytes += bytes;
        self.mem_by_class[class.index()] += bytes;
        self.mem_peak = self.mem_peak.max(self.mem_bytes);
    }

    /// Releases `bytes` of memory, saturating at zero. Untagged releases
    /// count against [`MemClass::Other`].
    pub fn release_mem(&mut self, bytes: u64) {
        self.release_mem_class(bytes, MemClass::Other);
    }

    /// Releases `bytes` of `class` memory, saturating at zero.
    pub fn release_mem_class(&mut self, bytes: u64, class: MemClass) {
        self.mem_bytes = self.mem_bytes.saturating_sub(bytes);
        let slot = &mut self.mem_by_class[class.index()];
        *slot = slot.saturating_sub(bytes);
    }

    /// Charges one completed disk request of `bytes` that occupied the
    /// disk for `dt`.
    pub fn charge_disk(&mut self, dt: Nanos, bytes: u64) {
        self.disk_time += dt;
        self.disk_reads += 1;
        self.disk_bytes += bytes;
    }

    /// Folds another usage record into this one (used when a destroyed
    /// child's residual usage is rolled into its parent).
    pub fn absorb(&mut self, other: &ResourceUsage) {
        self.cpu += other.cpu;
        self.kernel_cpu += other.kernel_cpu;
        self.pkts_rx += other.pkts_rx;
        self.pkts_tx += other.pkts_tx;
        self.bytes_rx += other.bytes_rx;
        self.bytes_tx += other.bytes_tx;
        self.tx_time += other.tx_time;
        self.mem_bytes += other.mem_bytes;
        for (mine, theirs) in self.mem_by_class.iter_mut().zip(other.mem_by_class.iter()) {
            *mine += theirs;
        }
        self.mem_peak = self.mem_peak.max(self.mem_bytes);
        self.disk_time += other.disk_time;
        self.disk_reads += other.disk_reads;
        self.disk_bytes += other.disk_bytes;
        self.sockets += other.sockets;
        self.syscalls += other.syscalls;
    }

    /// Returns the user-mode CPU time (total minus kernel).
    pub fn user_cpu(&self) -> Nanos {
        self.cpu.saturating_sub(self.kernel_cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_split_between_user_and_kernel() {
        let mut u = ResourceUsage::new();
        u.charge_cpu(Nanos::from_micros(100), false);
        u.charge_cpu(Nanos::from_micros(40), true);
        assert_eq!(u.cpu, Nanos::from_micros(140));
        assert_eq!(u.kernel_cpu, Nanos::from_micros(40));
        assert_eq!(u.user_cpu(), Nanos::from_micros(100));
    }

    #[test]
    fn packet_charges() {
        let mut u = ResourceUsage::new();
        u.charge_rx(512);
        u.charge_rx(512);
        u.charge_tx(1024);
        assert_eq!(u.pkts_rx, 2);
        assert_eq!(u.bytes_rx, 1024);
        assert_eq!(u.pkts_tx, 1);
        assert_eq!(u.bytes_tx, 1024);
    }

    #[test]
    fn memory_peak_tracking() {
        let mut u = ResourceUsage::new();
        u.charge_mem(100);
        u.charge_mem(50);
        u.release_mem(120);
        assert_eq!(u.mem_bytes, 30);
        assert_eq!(u.mem_peak, 150);
        u.release_mem(1000);
        assert_eq!(u.mem_bytes, 0);
    }

    #[test]
    fn per_class_breakdown_sums_to_total() {
        let mut u = ResourceUsage::new();
        u.charge_mem_class(100, MemClass::SockBuf);
        u.charge_mem_class(200, MemClass::CachePage);
        u.charge_mem(50); // Other
        assert_eq!(u.mem_bytes, 350);
        assert_eq!(u.mem_by_class[MemClass::SockBuf.index()], 100);
        assert_eq!(u.mem_by_class[MemClass::CachePage.index()], 200);
        assert_eq!(u.mem_by_class[MemClass::Other.index()], 50);
        assert_eq!(u.mem_by_class.iter().sum::<u64>(), u.mem_bytes);
        u.release_mem_class(150, MemClass::CachePage);
        assert_eq!(u.mem_by_class[MemClass::CachePage.index()], 50);
        assert_eq!(u.mem_by_class.iter().sum::<u64>(), u.mem_bytes);
    }

    #[test]
    fn mem_class_taxonomy_is_stable() {
        assert_eq!(MemClass::ALL.len(), MemClass::COUNT);
        for (i, c) in MemClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.label().is_empty());
        }
        assert!(MemClass::CachePage.reclaimable());
        for c in [
            MemClass::SockBuf,
            MemClass::ConnState,
            MemClass::ThreadStack,
            MemClass::Other,
        ] {
            assert!(!c.reclaimable(), "{c:?} must be pinned");
        }
    }

    #[test]
    fn absorb_sums_everything() {
        let mut a = ResourceUsage::new();
        a.charge_cpu(Nanos::from_micros(10), true);
        a.charge_rx(1);
        let mut b = ResourceUsage::new();
        b.charge_cpu(Nanos::from_micros(5), false);
        b.charge_tx(2);
        b.charge_tx_time(Nanos::from_micros(7));
        b.syscalls = 3;
        a.absorb(&b);
        assert_eq!(a.cpu, Nanos::from_micros(15));
        assert_eq!(a.kernel_cpu, Nanos::from_micros(10));
        assert_eq!(a.pkts_rx, 1);
        assert_eq!(a.pkts_tx, 1);
        assert_eq!(a.tx_time, Nanos::from_micros(7));
        assert_eq!(a.syscalls, 3);
    }
}
