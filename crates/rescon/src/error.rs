//! Error type for container operations.

use std::fmt;

/// Errors returned by resource-container operations.
///
/// Mirrors the failure modes a kernel implementation would surface as
/// `errno` values; each variant documents the §4.6 operation that can
/// produce it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RcError {
    /// The container id is stale or was never allocated.
    NotFound,
    /// The requested reparenting would create a cycle.
    Cycle,
    /// The prototype restricts thread/socket bindings to leaf containers
    /// (§5.1); the target has children.
    NotALeaf,
    /// The prototype restricts children to fixed-share parents (§5.1):
    /// "time-share containers cannot have children".
    ParentNotFixedShare,
    /// A fixed share must lie in `(0, 1]`.
    InvalidShare,
    /// The children of a parent would be guaranteed more than 100% of the
    /// parent's resources.
    ShareOvercommit,
    /// A CPU limit fraction must lie in `(0, 1]` with a non-zero window.
    InvalidLimit,
    /// The descriptor is not open or does not name a container.
    BadDescriptor,
    /// The operation requires a live container but it has been destroyed.
    Destroyed,
    /// The container still has live references and cannot be destroyed.
    StillReferenced,
    /// A memory or socket-buffer allocation would exceed a limit somewhere
    /// on the container's ancestor chain. Carries the refusing container
    /// (as its raw `Idx::as_u64()` key), its configured limit, and its
    /// subtree usage at the time of refusal, so callers can target reclaim
    /// at the violating subtree.
    LimitExceeded {
        /// Raw id of the container whose limit refused the charge.
        container: u64,
        /// The refusing container's configured limit in bytes.
        limit: u64,
        /// The refusing container's subtree usage in bytes when refused.
        used: u64,
    },
}

impl fmt::Display for RcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let RcError::LimitExceeded {
            container,
            limit,
            used,
        } = self
        {
            return write!(
                f,
                "resource limit exceeded: container {container} at {used}/{limit} bytes"
            );
        }
        let msg = match self {
            RcError::NotFound => "container not found",
            RcError::Cycle => "reparenting would create a cycle",
            RcError::NotALeaf => "operation requires a leaf container",
            RcError::ParentNotFixedShare => "time-share containers cannot have children",
            RcError::InvalidShare => "fixed share must be in (0, 1]",
            RcError::ShareOvercommit => "children shares exceed parent allocation",
            RcError::InvalidLimit => "CPU limit must be in (0, 1] with a non-zero window",
            RcError::BadDescriptor => "bad container descriptor",
            RcError::Destroyed => "container has been destroyed",
            RcError::StillReferenced => "container still referenced",
            RcError::LimitExceeded { .. } => unreachable!("handled above"),
        };
        f.write_str(msg)
    }
}

impl std::error::Error for RcError {}

/// Convenience alias for container-operation results.
pub type Result<T> = std::result::Result<T, RcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let all = [
            RcError::NotFound,
            RcError::Cycle,
            RcError::NotALeaf,
            RcError::ParentNotFixedShare,
            RcError::InvalidShare,
            RcError::ShareOvercommit,
            RcError::InvalidLimit,
            RcError::BadDescriptor,
            RcError::Destroyed,
            RcError::StillReferenced,
            RcError::LimitExceeded {
                container: 3,
                limit: 1000,
                used: 900,
            },
        ];
        for e in all {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn limit_exceeded_names_the_refusing_container() {
        let e = RcError::LimitExceeded {
            container: 7,
            limit: 4096,
            used: 4000,
        };
        let s = e.to_string();
        assert!(
            s.contains('7') && s.contains("4096") && s.contains("4000"),
            "{s}"
        );
    }
}
