//! Error type for container operations.

use std::fmt;

/// Errors returned by resource-container operations.
///
/// Mirrors the failure modes a kernel implementation would surface as
/// `errno` values; each variant documents the §4.6 operation that can
/// produce it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RcError {
    /// The container id is stale or was never allocated.
    NotFound,
    /// The requested reparenting would create a cycle.
    Cycle,
    /// The prototype restricts thread/socket bindings to leaf containers
    /// (§5.1); the target has children.
    NotALeaf,
    /// The prototype restricts children to fixed-share parents (§5.1):
    /// "time-share containers cannot have children".
    ParentNotFixedShare,
    /// A fixed share must lie in `(0, 1]`.
    InvalidShare,
    /// The children of a parent would be guaranteed more than 100% of the
    /// parent's resources.
    ShareOvercommit,
    /// A CPU limit fraction must lie in `(0, 1]` with a non-zero window.
    InvalidLimit,
    /// The descriptor is not open or does not name a container.
    BadDescriptor,
    /// The operation requires a live container but it has been destroyed.
    Destroyed,
    /// The container still has live references and cannot be destroyed.
    StillReferenced,
    /// A memory or socket-buffer allocation would exceed the container's
    /// limit.
    LimitExceeded,
}

impl fmt::Display for RcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            RcError::NotFound => "container not found",
            RcError::Cycle => "reparenting would create a cycle",
            RcError::NotALeaf => "operation requires a leaf container",
            RcError::ParentNotFixedShare => "time-share containers cannot have children",
            RcError::InvalidShare => "fixed share must be in (0, 1]",
            RcError::ShareOvercommit => "children shares exceed parent allocation",
            RcError::InvalidLimit => "CPU limit must be in (0, 1] with a non-zero window",
            RcError::BadDescriptor => "bad container descriptor",
            RcError::Destroyed => "container has been destroyed",
            RcError::StillReferenced => "container still referenced",
            RcError::LimitExceeded => "resource limit exceeded",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for RcError {}

/// Convenience alias for container-operation results.
pub type Result<T> = std::result::Result<T, RcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let all = [
            RcError::NotFound,
            RcError::Cycle,
            RcError::NotALeaf,
            RcError::ParentNotFixedShare,
            RcError::InvalidShare,
            RcError::ShareOvercommit,
            RcError::InvalidLimit,
            RcError::BadDescriptor,
            RcError::Destroyed,
            RcError::StillReferenced,
            RcError::LimitExceeded,
        ];
        for e in all {
            assert!(!e.to_string().is_empty());
        }
    }
}
