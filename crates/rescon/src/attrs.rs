//! Container attributes: scheduling parameters, resource limits, and
//! network QoS values (paper §4.1, §4.3, §4.4).

use simcore::Nanos;

use crate::error::{RcError, Result};

/// The scheduling parameters of a container (paper §4.3).
///
/// The prototype's multi-level scheduler supports two classes:
///
/// - **Fixed share**: the container (together with its children) is
///   guaranteed — and, when a [`CpuLimit`] is also set, restricted to — a
///   fraction of its parent's CPU allocation. Fixed-share containers may
///   have children.
/// - **Time shared**: the container competes with its siblings under
///   decay-usage scheduling at a numeric priority. A priority of zero means
///   "run only when nothing else wants the CPU" — the paper's SYN-flood
///   defense binds attacker traffic to such a container.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SchedPolicy {
    /// Decay-usage time sharing at the given numeric priority.
    ///
    /// Higher values mean more important. Priority 0 is special-cased by
    /// the schedulers as "starvable": it receives CPU only when no
    /// non-zero-priority work is runnable.
    TimeShared {
        /// Numeric priority; 0 = starvable background.
        priority: u32,
    },
    /// A guaranteed fraction of the parent's allocation.
    FixedShare {
        /// Guaranteed fraction in `(0, 1]` of the parent's CPU.
        share: f64,
    },
}

impl SchedPolicy {
    /// Returns the fixed share, if this is a fixed-share policy.
    pub fn share(&self) -> Option<f64> {
        match self {
            SchedPolicy::FixedShare { share } => Some(*share),
            SchedPolicy::TimeShared { .. } => None,
        }
    }

    /// Returns the numeric priority, if this is a time-shared policy.
    pub fn priority(&self) -> Option<u32> {
        match self {
            SchedPolicy::TimeShared { priority } => Some(*priority),
            SchedPolicy::FixedShare { .. } => None,
        }
    }

    /// Validates the policy parameters.
    pub fn validate(&self) -> Result<()> {
        match self {
            SchedPolicy::TimeShared { .. } => Ok(()),
            SchedPolicy::FixedShare { share } => {
                if *share > 0.0 && *share <= 1.0 {
                    Ok(())
                } else {
                    Err(RcError::InvalidShare)
                }
            }
        }
    }
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy::TimeShared { priority: 10 }
    }
}

/// A restriction on total CPU consumption (paper §4.8: "limiting the total
/// CPU usage of the class").
///
/// Enforced by the multi-level scheduler as a token bucket: over any
/// `window`, the container subtree may consume at most `fraction × window`
/// of CPU time; when exhausted it is throttled until the bucket refills.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuLimit {
    /// Maximum CPU fraction in `(0, 1]`.
    pub fraction: f64,
    /// Averaging window over which the fraction is enforced.
    pub window: Nanos,
}

impl CpuLimit {
    /// Creates a limit of `fraction` of the CPU averaged over `window`.
    pub fn new(fraction: f64, window: Nanos) -> Self {
        CpuLimit { fraction, window }
    }

    /// Validates the limit parameters.
    pub fn validate(&self) -> Result<()> {
        if self.fraction > 0.0 && self.fraction <= 1.0 && !self.window.is_zero() {
            Ok(())
        } else {
            Err(RcError::InvalidLimit)
        }
    }
}

/// Network quality-of-service attributes (paper §4.1).
///
/// The simulated network subsystem uses `weight` to order protocol
/// processing between containers of equal scheduling priority, and
/// `sockbuf_limit` to cap socket-buffer memory charged to the container.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetQos {
    /// Relative weight among equal-priority containers.
    pub weight: u32,
    /// Maximum socket-buffer bytes chargeable to this container.
    pub sockbuf_limit: Option<u64>,
    /// Optional hard cap on transmit bandwidth, in bits per second,
    /// applied to the container's subtree by the link scheduler.
    pub rate_bps: Option<u64>,
}

impl Default for NetQos {
    fn default() -> Self {
        NetQos {
            weight: 1,
            sockbuf_limit: None,
            rate_bps: None,
        }
    }
}

/// The full attribute set of a container (paper §4.1, §4.6 "Container
/// attributes").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Attributes {
    /// CPU scheduling parameters.
    pub policy: SchedPolicy,
    /// Optional hard restriction on CPU consumption.
    pub cpu_limit: Option<CpuLimit>,
    /// Optional limit on memory bytes charged to the container subtree.
    pub mem_limit: Option<u64>,
    /// Network QoS values.
    pub qos: NetQos,
    /// Optional per-request latency target. Deadline-aware CPU policies
    /// (`sched::EdfScheduler`) treat it as the relative deadline of work
    /// bound to this container's subtree; the rcspan SLO monitor uses the
    /// same value as the p99 objective, so one declared target drives
    /// both the policy and its verification.
    pub deadline: Option<Nanos>,
    /// Optional debug/billing label (the paper motivates accurate billing
    /// in §4.8).
    pub name: Option<String>,
}

impl Attributes {
    /// Creates time-shared attributes at the given priority.
    ///
    /// # Examples
    ///
    /// ```
    /// use rescon::{Attributes, SchedPolicy};
    ///
    /// let a = Attributes::time_shared(5);
    /// assert_eq!(a.policy, SchedPolicy::TimeShared { priority: 5 });
    /// ```
    pub fn time_shared(priority: u32) -> Self {
        Attributes {
            policy: SchedPolicy::TimeShared { priority },
            ..Attributes::default()
        }
    }

    /// Creates fixed-share attributes with the given guaranteed fraction.
    pub fn fixed_share(share: f64) -> Self {
        Attributes {
            policy: SchedPolicy::FixedShare { share },
            ..Attributes::default()
        }
    }

    /// Adds a CPU usage limit (builder style).
    pub fn with_cpu_limit(mut self, fraction: f64, window: Nanos) -> Self {
        self.cpu_limit = Some(CpuLimit::new(fraction, window));
        self
    }

    /// Adds a memory limit in bytes (builder style).
    pub fn with_mem_limit(mut self, bytes: u64) -> Self {
        self.mem_limit = Some(bytes);
        self
    }

    /// Sets the relative network transmit weight (builder style).
    ///
    /// A weight of zero is normalized to 1; the link scheduler divides
    /// bandwidth among competing containers in proportion to effective
    /// weights resolved over the hierarchy.
    pub fn with_net_weight(mut self, weight: u32) -> Self {
        self.qos.weight = weight.max(1);
        self
    }

    /// Caps the socket-buffer bytes chargeable to this container
    /// (builder style). With a finite-bandwidth link configured this is
    /// enforced as send backpressure.
    pub fn with_sockbuf_limit(mut self, bytes: u64) -> Self {
        self.qos.sockbuf_limit = Some(bytes);
        self
    }

    /// Caps the container subtree's transmit bandwidth in bits per
    /// second (builder style).
    pub fn with_net_rate(mut self, bps: u64) -> Self {
        self.qos.rate_bps = Some(bps);
        self
    }

    /// Declares a per-request latency target (builder style): the
    /// relative deadline deadline-aware CPU policies schedule against,
    /// and the objective SLO monitors verify.
    pub fn with_deadline(mut self, deadline: Nanos) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a debug label (builder style).
    pub fn named(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Validates all attribute fields.
    pub fn validate(&self) -> Result<()> {
        self.policy.validate()?;
        if let Some(limit) = &self.cpu_limit {
            limit.validate()?;
        }
        if self.deadline == Some(Nanos::ZERO) {
            return Err(RcError::InvalidLimit);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_accessors() {
        assert_eq!(SchedPolicy::TimeShared { priority: 3 }.priority(), Some(3));
        assert_eq!(SchedPolicy::TimeShared { priority: 3 }.share(), None);
        assert_eq!(SchedPolicy::FixedShare { share: 0.5 }.share(), Some(0.5));
        assert_eq!(SchedPolicy::FixedShare { share: 0.5 }.priority(), None);
    }

    #[test]
    fn share_validation() {
        assert!(SchedPolicy::FixedShare { share: 0.0 }.validate().is_err());
        assert!(SchedPolicy::FixedShare { share: 1.5 }.validate().is_err());
        assert!(SchedPolicy::FixedShare { share: -0.1 }.validate().is_err());
        assert!(SchedPolicy::FixedShare { share: 1.0 }.validate().is_ok());
        assert!(SchedPolicy::FixedShare { share: 0.01 }.validate().is_ok());
    }

    #[test]
    fn limit_validation() {
        assert!(CpuLimit::new(0.3, Nanos::from_secs(1)).validate().is_ok());
        assert!(CpuLimit::new(0.0, Nanos::from_secs(1)).validate().is_err());
        assert!(CpuLimit::new(1.1, Nanos::from_secs(1)).validate().is_err());
        assert!(CpuLimit::new(0.3, Nanos::ZERO).validate().is_err());
    }

    #[test]
    fn builder_chain() {
        let a = Attributes::fixed_share(0.3)
            .with_cpu_limit(0.3, Nanos::from_secs(10))
            .with_mem_limit(1 << 20)
            .with_net_weight(3)
            .with_sockbuf_limit(64 << 10)
            .named("cgi-parent");
        assert!(a.validate().is_ok());
        assert_eq!(a.policy.share(), Some(0.3));
        assert_eq!(a.cpu_limit.unwrap().fraction, 0.3);
        assert_eq!(a.mem_limit, Some(1 << 20));
        assert_eq!(a.qos.weight, 3);
        assert_eq!(a.qos.sockbuf_limit, Some(64 << 10));
        assert_eq!(a.name.as_deref(), Some("cgi-parent"));
    }

    #[test]
    fn zero_net_weight_normalized() {
        assert_eq!(Attributes::time_shared(1).with_net_weight(0).qos.weight, 1);
    }

    #[test]
    fn attribute_validation_checks_all_fields() {
        let bad = Attributes::time_shared(1).with_cpu_limit(2.0, Nanos::from_secs(1));
        assert_eq!(bad.validate(), Err(RcError::InvalidLimit));
        let bad2 = Attributes::fixed_share(2.0);
        assert_eq!(bad2.validate(), Err(RcError::InvalidShare));
    }

    #[test]
    fn default_is_valid_timeshare() {
        let d = Attributes::default();
        assert!(d.validate().is_ok());
        assert!(matches!(d.policy, SchedPolicy::TimeShared { .. }));
    }
}
