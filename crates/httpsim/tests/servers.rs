//! End-to-end tests of the three server models against a small closed-loop
//! client world, under each kernel configuration.

use std::cell::RefCell;
use std::rc::Rc;

use httpsim::stats::shared_stats;
use httpsim::{
    encode_request, EventApi, EventDrivenServer, PreforkServer, ReqKind, ServerConfig,
    ThreadPoolServer,
};
use rescon::Attributes;
use simcore::Nanos;
use simnet::{FlowKey, IpAddr, Packet, PacketKind};
use simos::{Kernel, KernelConfig, World, WorldAction};

/// A set of closed-loop clients; client `i` uses address 10.0.(i/250).(i%250 + 1).
struct ClientSet {
    kinds: Vec<ReqKind>,
    next_port: Vec<u16>,
    requests_left: Vec<u64>,
    pub completions: Vec<Vec<Nanos>>,
    pub latencies: Vec<Vec<Nanos>>,
    started_at: Vec<Nanos>,
}

impl ClientSet {
    fn new(kinds: Vec<ReqKind>) -> Self {
        let n = kinds.len();
        ClientSet {
            kinds,
            next_port: vec![1000; n],
            requests_left: vec![u64::MAX; n],
            completions: vec![Vec::new(); n],
            latencies: vec![Vec::new(); n],
            started_at: vec![Nanos::ZERO; n],
        }
    }

    fn addr(i: usize) -> IpAddr {
        IpAddr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1)
    }

    fn client_of(addr: IpAddr) -> usize {
        let (_, _, c, d) = addr.octets();
        c as usize * 250 + d as usize - 1
    }

    fn flow(&self, i: usize) -> FlowKey {
        FlowKey::new(Self::addr(i), self.next_port[i], 80)
    }

    fn start_request(&mut self, i: usize, now: Nanos, actions: &mut Vec<WorldAction>) {
        if self.requests_left[i] == 0 {
            return;
        }
        self.requests_left[i] -= 1;
        self.next_port[i] = self.next_port[i].wrapping_add(1).max(1000);
        self.started_at[i] = now;
        actions.push(WorldAction::SendPacket {
            pkt: Packet::new(self.flow(i), PacketKind::Syn),
            delay: Nanos::ZERO,
        });
    }
}

impl World for ClientSet {
    fn on_packet(&mut self, pkt: Packet, now: Nanos, actions: &mut Vec<WorldAction>) {
        let i = Self::client_of(pkt.flow.src);
        if i >= self.kinds.len() || pkt.flow != self.flow(i) {
            return;
        }
        match pkt.kind {
            PacketKind::SynAck => {
                let req = encode_request(self.kinds[i], 0) as u64;
                actions.push(WorldAction::SendPacket {
                    pkt: Packet::new(pkt.flow, PacketKind::Ack),
                    delay: Nanos::ZERO,
                });
                actions.push(WorldAction::SendPacket {
                    pkt: Packet::new(pkt.flow, PacketKind::Data { bytes: req as u32 }),
                    delay: Nanos::ZERO,
                });
            }
            PacketKind::Data { .. } => {
                self.completions[i].push(now);
                self.latencies[i].push(now - self.started_at[i]);
                if self.kinds[i] == ReqKind::StaticKeepAlive {
                    // Persistent connection: next request on the same flow.
                    if self.requests_left[i] > 0 {
                        self.requests_left[i] -= 1;
                        self.started_at[i] = now;
                        let req = encode_request(self.kinds[i], 0);
                        actions.push(WorldAction::SendPacket {
                            pkt: Packet::new(pkt.flow, PacketKind::Data { bytes: req }),
                            delay: Nanos::ZERO,
                        });
                    }
                } else {
                    self.start_request(i, now, actions);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: u64, now: Nanos, actions: &mut Vec<WorldAction>) {
        self.start_request(tag as usize, now, actions);
    }
}

fn start_clients(k: &mut Kernel, n: usize) {
    for i in 0..n {
        k.arm_world_timer(i as u64, Nanos::from_micros(10 + i as u64));
    }
}

#[test]
fn event_driven_serves_static_under_all_kernels() {
    for cfg in [
        KernelConfig::unmodified(),
        KernelConfig::lrp(),
        KernelConfig::resource_containers(),
    ] {
        let stats = shared_stats();
        let mut k = Kernel::new(cfg);
        let server = EventDrivenServer::new(ServerConfig::default(), stats.clone());
        k.spawn_process(
            Box::new(server),
            "httpd",
            None,
            Attributes::time_shared(10),
            None,
        );
        let mut clients = ClientSet::new(vec![ReqKind::Static; 4]);
        start_clients(&mut k, 4);
        k.run(&mut clients, Nanos::from_secs(1));
        let total: usize = clients.completions.iter().map(|c| c.len()).sum();
        assert!(total > 400, "total = {total}");
        // The server may have answered a few requests whose responses were
        // still on the wire at cutoff.
        let served = stats.borrow().static_served;
        assert!(served as usize >= total && served as usize <= total + 8);
        let closed = stats.borrow().closed;
        assert!(closed as usize >= total && closed as usize <= total + 8);
    }
}

#[test]
fn event_driven_select_api_also_works() {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    let cfg = ServerConfig {
        api: EventApi::Select,
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats.clone())),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut clients = ClientSet::new(vec![ReqKind::Static; 4]);
    start_clients(&mut k, 4);
    k.run(&mut clients, Nanos::from_secs(1));
    assert!(stats.borrow().static_served > 400);
}

#[test]
fn keep_alive_connections_serve_many_requests_per_connection() {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::unmodified());
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut clients = ClientSet::new(vec![ReqKind::StaticKeepAlive; 2]);
    // Keep-alive clients reuse the flow: don't advance the port. The
    // ClientSet always opens a new connection per request, so emulate
    // keep-alive by checking server-side connection counts instead.
    start_clients(&mut k, 2);
    k.run(&mut clients, Nanos::from_secs(1));
    let s = stats.borrow();
    assert!(s.static_served > 500, "served {}", s.static_served);
    // Keep-alive: connections accepted far fewer than requests served.
    assert!(
        s.accepted * 2 < s.static_served,
        "accepted {} vs served {}",
        s.accepted,
        s.static_served
    );
}

#[test]
fn persistent_throughput_exceeds_per_request_connections() {
    let run = |kind: ReqKind| {
        let stats = shared_stats();
        let mut k = Kernel::new(KernelConfig::unmodified());
        k.spawn_process(
            Box::new(EventDrivenServer::new(
                ServerConfig::default(),
                stats.clone(),
            )),
            "httpd",
            None,
            Attributes::time_shared(10),
            None,
        );
        let mut clients = ClientSet::new(vec![kind; 8]);
        start_clients(&mut k, 8);
        k.run(&mut clients, Nanos::from_secs(2));
        let s = stats.borrow().static_served;
        s
    };
    let per_conn = run(ReqKind::Static);
    let persistent = run(ReqKind::StaticKeepAlive);
    // §5.3: 9487 vs 2954 requests/s — persistent is ~3.2x faster.
    let ratio = persistent as f64 / per_conn as f64;
    assert!(
        ratio > 2.0 && ratio < 4.5,
        "persistent/per-conn ratio = {ratio} ({persistent}/{per_conn})"
    );
}

#[test]
fn cgi_requests_complete_and_compete() {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::unmodified());
    let cfg = ServerConfig {
        cgi_cpu: Nanos::from_millis(50),
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats.clone())),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut clients = ClientSet::new(vec![ReqKind::Cgi, ReqKind::Static]);
    start_clients(&mut k, 2);
    k.run(&mut clients, Nanos::from_secs(2));
    let s = stats.borrow();
    assert!(
        s.cgi_dispatched > 5,
        "cgi_dispatched = {}",
        s.cgi_dispatched
    );
    assert!(s.cgi_completed > 5, "cgi_completed = {}", s.cgi_completed);
    assert!(s.static_served > 100);
    // CGI processes come and go; beyond in-flight requests (plus a couple
    // whose exit work was still queued at cutoff) none should survive.
    let in_flight = (s.cgi_dispatched - s.cgi_completed) as usize;
    assert!(
        k.process_count() <= 1 + in_flight + 2,
        "processes = {}, in-flight = {in_flight}",
        k.process_count()
    );
}

#[test]
fn cgi_sandbox_reparents_under_cgi_parent() {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    let cfg = ServerConfig {
        cgi_cpu: Nanos::from_millis(20),
        cgi_sandbox: Some(httpsim::event_driven::CgiSandbox {
            share: 0.3,
            limit: 0.3,
            window: Nanos::from_millis(100),
        }),
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats.clone())),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut clients = ClientSet::new(vec![ReqKind::Cgi]);
    start_clients(&mut k, 1);
    k.run(&mut clients, Nanos::from_secs(1));
    assert!(stats.borrow().cgi_completed > 0);
    // The sandbox container exists and has accumulated subtree CPU.
    let cgi_parent = k
        .containers
        .iter()
        .find(|(_, c)| c.attrs().name.as_deref() == Some("cgi-parent"))
        .map(|(id, _)| id)
        .expect("cgi-parent exists");
    let cpu = k.containers.subtree_cpu(cgi_parent).unwrap();
    assert!(cpu > Nanos::from_millis(10), "sandbox cpu = {cpu}");
}

#[test]
fn thread_pool_server_serves() {
    for cfg in [
        KernelConfig::unmodified(),
        KernelConfig::resource_containers(),
    ] {
        let stats = shared_stats();
        let mut k = Kernel::new(cfg);
        let server =
            ThreadPoolServer::new(80, 8, Nanos::from_micros(47), 1024, true, stats.clone());
        k.spawn_process(
            Box::new(server),
            "httpd-mt",
            None,
            Attributes::time_shared(10),
            None,
        );
        let mut clients = ClientSet::new(vec![ReqKind::Static; 6]);
        start_clients(&mut k, 6);
        k.run(&mut clients, Nanos::from_secs(1));
        let s = stats.borrow();
        assert!(s.static_served > 300, "served = {}", s.static_served);
        // A couple of connections may still be in flight at cutoff.
        assert!(s.accepted >= s.closed && s.accepted - s.closed <= 8);
    }
}

#[test]
fn prefork_server_serves() {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::unmodified());
    let server = PreforkServer::new(80, 4, Nanos::from_micros(47), 1024, stats.clone());
    k.spawn_process(
        Box::new(server),
        "httpd-master",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut clients = ClientSet::new(vec![ReqKind::Static; 6]);
    start_clients(&mut k, 6);
    k.run(&mut clients, Nanos::from_secs(1));
    let s = stats.borrow();
    assert!(s.static_served > 300, "served = {}", s.static_served);
    // Master + 4 workers alive.
    assert_eq!(k.process_count(), 5);
}

#[test]
fn per_request_containers_do_not_leak() {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut clients = ClientSet::new(vec![ReqKind::Static; 4]);
    start_clients(&mut k, 4);
    k.run(&mut clients, Nanos::from_secs(1));
    let served = stats.borrow().static_served;
    assert!(served > 200);
    // §5.4: one container per request was created and destroyed; the live
    // set stays bounded (root + per-process + class + in-flight conns).
    assert!(
        k.containers.len() < 32,
        "live containers = {}",
        k.containers.len()
    );
    assert!(k.containers.destroyed_count() >= served / 2);
    k.containers.check_invariants();
}

/// Shared-stats smoke check so the Rc pattern is exercised from outside.
#[test]
fn shared_stats_alias_across_harness() {
    let stats = shared_stats();
    let clone: Rc<RefCell<httpsim::ServerStats>> = stats.clone();
    stats.borrow_mut().accepted = 3;
    assert_eq!(clone.borrow().accepted, 3);
}

#[test]
fn fastcgi_pool_serves_dynamic_requests_without_forking() {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    let cfg = ServerConfig {
        cgi_cpu: Nanos::from_millis(20),
        fastcgi_workers: 2,
        // Sandbox the pool as §5.6 prescribes; otherwise two always-busy
        // workers starve static service.
        cgi_sandbox: Some(httpsim::event_driven::CgiSandbox {
            share: 0.5,
            limit: 0.5,
            window: Nanos::from_millis(100),
        }),
        ..ServerConfig::default()
    };
    k.spawn_process(
        Box::new(EventDrivenServer::new(cfg, stats.clone())),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut clients = ClientSet::new(vec![ReqKind::Cgi, ReqKind::Cgi, ReqKind::Static]);
    start_clients(&mut k, 3);
    k.run(&mut clients, Nanos::from_secs(2));
    let s = stats.borrow();
    assert!(s.cgi_completed > 20, "cgi_completed = {}", s.cgi_completed);
    assert!(s.static_served > 100);
    // Persistent pool: the process count stays fixed (server + 2 workers).
    assert_eq!(k.process_count(), 3);
    k.containers.check_invariants();
}
