//! Hardening tests for the request path: malformed and truncated
//! requests must never panic the server — the offending connection is
//! charged for the protocol work it caused and then closed — and a
//! keep-alive client abandoning mid-stream must release the
//! connection's container binding.

use proptest::prelude::*;

use httpsim::stats::shared_stats;
use httpsim::{decode_request, encode_request, EventDrivenServer, ReqKind, ServerConfig};
use rescon::Attributes;
use simcore::Nanos;
use simnet::{FlowKey, IpAddr, Packet, PacketKind};
use simos::{Kernel, KernelConfig, World, WorldAction};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `decode_request` is total: any length decodes to `None` or to a
    /// valid `(kind, doc)` — and in the latter case re-encoding gives
    /// back the same length (no aliasing between encodings).
    #[test]
    fn decode_request_total_and_consistent(len in any::<u64>()) {
        if let Some((kind, doc)) = decode_request(len) {
            // Wire Data lengths are u32; beyond that `decode_request`
            // truncates, so lengths past u32::MAX alias small encodings
            // by construction. Within the wire range the roundtrip is
            // exact.
            if len <= u32::MAX as u64 {
                prop_assert_eq!(encode_request(kind, doc) as u64, len);
            }
        }
    }

    /// Truncated reads — any prefix of a valid encoding's length — never
    /// decode to a different valid request by accident: either `None` or
    /// the value itself.
    #[test]
    fn truncated_lengths_never_alias(doc in 0u32..10_000, cut in 1u64..200) {
        let full = encode_request(ReqKind::Static, doc) as u64;
        let truncated = full.saturating_sub(cut);
        if let Some((kind, d)) = decode_request(truncated) {
            prop_assert_eq!(encode_request(kind, d) as u64, truncated);
        }
    }
}

/// What the scripted client should send once the handshake completes.
#[derive(Clone, Copy)]
enum Script {
    /// Ack only; never send a request.
    HandshakeOnly,
    /// Ack plus a Data packet of the given (invalid) length.
    Malformed(u32),
    /// Keep-alive request, and on the first response a second request
    /// immediately followed by a mid-stream Rst (client abandons).
    KeepAliveAbandon,
}

struct ScriptedClient {
    script: Script,
    flow: FlowKey,
    responses: u64,
    rst_sent: bool,
}

impl ScriptedClient {
    fn new(script: Script) -> Self {
        ScriptedClient {
            script,
            flow: FlowKey::new(IpAddr::new(10, 0, 0, 1), 1000, 80),
            responses: 0,
            rst_sent: false,
        }
    }

    fn send(&self, kind: PacketKind, actions: &mut Vec<WorldAction>) {
        actions.push(WorldAction::SendPacket {
            pkt: Packet::new(self.flow, kind),
            delay: Nanos::ZERO,
        });
    }
}

impl World for ScriptedClient {
    fn on_packet(&mut self, pkt: Packet, _now: Nanos, actions: &mut Vec<WorldAction>) {
        if pkt.flow != self.flow {
            return;
        }
        match pkt.kind {
            PacketKind::SynAck => {
                self.send(PacketKind::Ack, actions);
                match self.script {
                    Script::HandshakeOnly => {}
                    Script::Malformed(len) => self.send(PacketKind::Data { bytes: len }, actions),
                    Script::KeepAliveAbandon => self.send(
                        PacketKind::Data {
                            bytes: encode_request(ReqKind::StaticKeepAlive, 0),
                        },
                        actions,
                    ),
                }
            }
            PacketKind::Data { .. } => {
                self.responses += 1;
                if matches!(self.script, Script::KeepAliveAbandon) && !self.rst_sent {
                    // Second request goes out, then the client vanishes
                    // mid-stream with a reset.
                    self.send(
                        PacketKind::Data {
                            bytes: encode_request(ReqKind::StaticKeepAlive, 0),
                        },
                        actions,
                    );
                    self.send(PacketKind::Rst, actions);
                    self.rst_sent = true;
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _tag: u64, _now: Nanos, actions: &mut Vec<WorldAction>) {
        self.send(PacketKind::Syn, actions);
    }
}

/// Runs one scripted client against an event-driven server on the RC
/// kernel (per-connection containers on) and returns the finished
/// kernel, the stats handle, and the client world.
fn run_script(script: Script) -> (Kernel, httpsim::stats::SharedStats, ScriptedClient) {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut client = ScriptedClient::new(script);
    k.arm_world_timer(0, Nanos::from_micros(10));
    k.run(&mut client, Nanos::from_millis(100));
    (k, stats, client)
}

/// A malformed request never panics the server: the connection is torn
/// down (accepted and closed), no response is produced, the container
/// that classified the connection is charged for the protocol work the
/// garbage caused, and its per-connection container is released.
#[test]
fn malformed_request_charges_and_closes() {
    let bad = encode_request(ReqKind::Static, 3) + 7; // (len-200)%16 == 10
    assert_eq!(decode_request(bad as u64), None);

    let (k_base, stats_base, _) = run_script(Script::HandshakeOnly);
    let (k, stats, client) = run_script(Script::Malformed(bad));

    let s = stats.borrow();
    assert_eq!(s.static_served, 0, "garbage must not be served");
    assert_eq!(s.accepted, 1);
    assert_eq!(s.closed, 1, "connection not torn down");
    assert_eq!(client.responses, 0, "server responded to garbage");
    // The per-connection container existed and was released on teardown.
    assert!(k.containers.destroyed_count() >= 1);
    // The garbage Data packet's protocol work was charged (to the
    // connection's container), beyond what the bare handshake costs.
    assert!(
        k.stats().charged_cpu > k_base.stats().charged_cpu,
        "malformed request charged no work: {:?} vs {:?}",
        k.stats().charged_cpu,
        k_base.stats().charged_cpu
    );
    drop(stats_base);
}

/// A keep-alive client that abandons mid-stream (reset with a request in
/// flight) releases the connection's container binding: the server
/// tears the connection down and the per-connection container is
/// destroyed rather than staying bound forever.
#[test]
fn keepalive_abandon_releases_container_binding() {
    let (k, stats, client) = run_script(Script::KeepAliveAbandon);
    let s = stats.borrow();
    assert_eq!(
        s.static_served, 1,
        "first keep-alive request must be served"
    );
    assert!(client.responses >= 1);
    assert_eq!(s.accepted, 1);
    assert_eq!(s.closed, 1, "abandoned connection never torn down");
    assert!(
        k.containers.destroyed_count() >= 1,
        "per-connection container still live after abandon"
    );
    // Every container the run created was also released: nothing stays
    // bound to the dead connection.
    assert_eq!(
        k.containers.created_count() - k.containers.destroyed_count(),
        k.containers.iter().count() as u64,
    );
}
