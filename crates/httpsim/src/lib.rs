//! Simulated HTTP server applications for the resource-containers
//! reproduction.
//!
//! This crate provides the application side of the paper's evaluation — a
//! family of web-server state machines running on the `simos` kernel:
//!
//! - [`EventDrivenServer`]: the single-process event-driven server derived
//!   from thttpd used throughout §5, configurable to use `select()` or the
//!   scalable event API (§5.5), to create a resource container per
//!   connection (§4.8, §5.4), to segregate client classes onto filtered
//!   listen sockets with per-class containers (§5.5), to sandbox CGI work
//!   under a parent container with a CPU limit (§5.6), and to isolate
//!   SYN-flood sources behind a priority-zero filtered listener when the
//!   kernel reports SYN drops (§5.7).
//! - [`ThreadPoolServer`]: the single-process multi-threaded model of
//!   Figure 3 — one kernel thread per connection from a pool, each thread
//!   resource-bound to its connection's container (§4.8, Figure 9).
//! - [`PreforkServer`]: the process-per-connection model of Figure 1 —
//!   pre-forked workers all accepting from a shared listening socket.
//! - [`CgiWorker`]: the auxiliary CGI process — burns CPU, writes the
//!   response directly to the client connection, exits; under resource
//!   containers it runs bound to the request's container, which the server
//!   reparented under its CGI sandbox.
//!
//! Requests and responses are modelled at the granularity the experiments
//! need: the request *kind* (static / keep-alive static / CGI) and a
//! document id are encoded in the request length (standing in for URL
//! parsing), and responses are byte counts.

pub mod cache;
pub mod cgi;
pub mod event_driven;
pub mod fastcgi;
pub mod prefork;
pub mod request;
pub mod stats;
pub mod threaded;

pub use cache::FileCache;
pub use cgi::CgiWorker;
pub use event_driven::{ClassSpec, EventApi, EventDrivenServer, FileBacking, ServerConfig};
pub use fastcgi::{dispatch, shared_mailbox, FastCgiJob, FastCgiWorker};
pub use prefork::PreforkServer;
pub use request::{decode_request, encode_request, ReqKind};
pub use stats::ServerStats;
pub use threaded::ThreadPoolServer;
