//! The process-per-connection server with pre-forked workers (Figure 1).
//!
//! "A master process accepts new connections and passes them to the
//! pre-forked worker processes" — in the common BSD idiom (and ours) the
//! workers simply block in `accept()` on the shared listening socket the
//! master created, which the kernel hands them one at a time.

use std::cell::Cell;
use std::rc::Rc;

use sched::TaskId;
use simcore::Nanos;
use simnet::SockId;
use simos::{AppEvent, AppHandler, ListenSpec, SysCtx};

use crate::request::decode_request;
use crate::stats::SharedStats;

/// The master process: creates the shared listener and forks workers.
pub struct PreforkServer {
    port: u16,
    workers: u32,
    parse_cost: Nanos,
    response_bytes: u64,
    stats: SharedStats,
    /// Shared slot through which workers learn the listener id (stands in
    /// for fd inheritance across `fork()`).
    listener_slot: Rc<Cell<Option<SockId>>>,
}

impl PreforkServer {
    /// Creates a master that will fork `workers` worker processes.
    pub fn new(
        port: u16,
        workers: u32,
        parse_cost: Nanos,
        response_bytes: u64,
        stats: SharedStats,
    ) -> Self {
        PreforkServer {
            port,
            workers: workers.max(1),
            parse_cost,
            response_bytes,
            stats,
            listener_slot: Rc::new(Cell::new(None)),
        }
    }
}

impl AppHandler for PreforkServer {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _thread: TaskId, ev: AppEvent) {
        if let AppEvent::Start = ev {
            let l = sys.listen(ListenSpec::port(self.port));
            self.listener_slot.set(Some(l));
            for i in 0..self.workers {
                let w = PreforkWorker {
                    listener: self.listener_slot.clone(),
                    parse_cost: self.parse_cost,
                    response_bytes: self.response_bytes,
                    stats: self.stats.clone(),
                    conn: None,
                    pending_tx: 0,
                };
                sys.spawn_process(
                    Box::new(w),
                    &format!("httpd-worker-{i}"),
                    None,
                    rescon::Attributes::time_shared(10),
                );
            }
            // The master has nothing further to do but stay alive.
            sys.sleep_until(Nanos::MAX, 0);
        }
    }
}

/// A pre-forked worker: accept → read → respond → close → repeat.
struct PreforkWorker {
    listener: Rc<Cell<Option<SockId>>>,
    parse_cost: Nanos,
    response_bytes: u64,
    stats: SharedStats,
    conn: Option<SockId>,
    /// Response bytes still unsent because of send backpressure.
    pending_tx: u64,
}

impl PreforkWorker {
    fn try_accept(&mut self, sys: &mut SysCtx<'_>) {
        let Some(listener) = self.listener.get() else {
            return;
        };
        match sys.accept(listener) {
            Some(conn) => {
                self.stats.borrow_mut().accepted += 1;
                self.conn = Some(conn);
                sys.read_wait(conn);
            }
            None => {
                self.conn = None;
                sys.accept_wait(listener);
            }
        }
    }
}

impl AppHandler for PreforkWorker {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _thread: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => self.try_accept(sys),
            AppEvent::SelectReady { ready } => match self.conn {
                Some(conn) if ready.contains(&conn) => {
                    let Ok((bytes, eof)) = sys.read(conn) else {
                        // Socket vanished (e.g. reset): recycle the worker.
                        self.conn = None;
                        self.try_accept(sys);
                        return;
                    };
                    if bytes == 0 {
                        if eof {
                            let _ = sys.close(conn);
                            self.conn = None;
                            self.stats.borrow_mut().closed += 1;
                            self.try_accept(sys);
                        } else {
                            sys.read_wait(conn);
                        }
                    } else if decode_request(bytes).is_some() {
                        sys.compute(self.parse_cost, 0);
                    } else {
                        let _ = sys.close(conn);
                        self.conn = None;
                        self.try_accept(sys);
                    }
                }
                Some(conn) => sys.read_wait(conn),
                None => self.try_accept(sys),
            },
            AppEvent::Continue { .. } => {
                if let Some(conn) = self.conn {
                    let want = self.response_bytes;
                    let sent = sys.send(conn, want).unwrap_or(want);
                    self.stats.borrow_mut().record_static(0, sys.now());
                    if sent < want {
                        // Backpressure: block until the socket drains.
                        self.pending_tx = want - sent;
                        sys.send_wait(conn);
                        return;
                    }
                    let _ = sys.close(conn);
                    self.conn = None;
                    self.stats.borrow_mut().closed += 1;
                }
                self.try_accept(sys);
            }
            AppEvent::Writable { .. } => {
                if let Some(conn) = self.conn {
                    let remaining = self.pending_tx;
                    let sent = sys.send(conn, remaining).unwrap_or(remaining);
                    if sent < remaining {
                        self.pending_tx = remaining - sent;
                        sys.send_wait(conn);
                        return;
                    }
                    self.pending_tx = 0;
                    let _ = sys.close(conn);
                    self.conn = None;
                    self.stats.borrow_mut().closed += 1;
                }
                self.try_accept(sys);
            }
            _ => {}
        }
    }
}
