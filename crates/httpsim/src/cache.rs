//! A small LRU file cache.
//!
//! The paper's experiments serve a 1 KB file out of the filesystem cache;
//! this module models the cache so that harnesses can also explore miss
//! behaviour (an extension experiment). A hit costs nothing beyond the
//! server's normal per-request work; a miss adds a configurable disk-read
//! CPU cost that the server charges before responding.

use std::collections::VecDeque;

use simcore::Nanos;

/// An LRU cache of documents, keyed by document id.
///
/// # Examples
///
/// ```
/// use httpsim::FileCache;
/// use simcore::Nanos;
///
/// let mut c = FileCache::new(2, 1024, Nanos::from_micros(500));
/// assert!(!c.lookup(1)); // cold miss
/// assert!(c.lookup(1));  // now hot
/// c.lookup(2);
/// c.lookup(3);           // evicts 1
/// assert!(!c.lookup(1));
/// ```
#[derive(Debug)]
pub struct FileCache {
    /// Most-recently-used order, front = LRU victim.
    lru: VecDeque<u32>,
    capacity: usize,
    /// Bytes of every document (uniform, like the paper's 1 KB file).
    doc_bytes: u64,
    /// Extra CPU charged on a miss (disk read + copy).
    miss_cost: Nanos,
    hits: u64,
    misses: u64,
}

impl FileCache {
    /// Creates a cache holding `capacity` documents of `doc_bytes` each;
    /// misses cost `miss_cost` of CPU.
    pub fn new(capacity: usize, doc_bytes: u64, miss_cost: Nanos) -> Self {
        FileCache {
            lru: VecDeque::new(),
            capacity: capacity.max(1),
            doc_bytes,
            miss_cost,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `doc`, updating recency; returns `true` on a hit.
    pub fn lookup(&mut self, doc: u32) -> bool {
        if let Some(pos) = self.lru.iter().position(|&d| d == doc) {
            self.lru.remove(pos);
            self.lru.push_back(doc);
            self.hits += 1;
            true
        } else {
            if self.lru.len() == self.capacity {
                self.lru.pop_front();
            }
            self.lru.push_back(doc);
            self.misses += 1;
            false
        }
    }

    /// The size of a document.
    pub fn doc_bytes(&self) -> u64 {
        self.doc_bytes
    }

    /// The extra CPU cost of a miss.
    pub fn miss_cost(&self) -> Nanos {
        self.miss_cost
    }

    /// Returns `(hits, misses)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> FileCache {
        FileCache::new(cap, 1024, Nanos::from_micros(100))
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(2);
        c.lookup(1);
        c.lookup(2);
        c.lookup(1); // 1 is now MRU
        c.lookup(3); // evicts 2
        assert!(c.lookup(1));
        assert!(!c.lookup(2));
    }

    #[test]
    fn counters_track() {
        let mut c = cache(4);
        c.lookup(1);
        c.lookup(1);
        c.lookup(2);
        assert_eq!(c.counters(), (1, 2));
    }

    #[test]
    fn capacity_one_still_works() {
        let mut c = FileCache::new(0, 1024, Nanos::ZERO);
        assert!(!c.lookup(1));
        assert!(c.lookup(1));
        assert!(!c.lookup(2));
        assert!(!c.lookup(1));
    }
}
