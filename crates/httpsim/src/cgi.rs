//! The auxiliary CGI process (§2, §5.6).
//!
//! "Requests for dynamic resources ... are typically created by auxiliary
//! third-party programs, which run as separate processes to provide fault
//! isolation." Each worker burns its configured CPU, writes the response
//! directly to the client connection, closes it, and exits.
//!
//! Under resource containers, the worker's thread binds to the *request's*
//! container (which the server passed over and reparented under its CGI
//! sandbox, §5.6), so the 2 s of CPU are charged to the sandboxed
//! activity. On the baselines the worker's own process is the principal,
//! competing equally with the web server — the failure mode Figure 12
//! demonstrates.

use rescon::ContainerId;
use sched::TaskId;
use simcore::Nanos;
use simnet::SockId;
use simos::{AppEvent, AppHandler, SysCtx};

use crate::stats::SharedStats;

/// A fork-per-request CGI process.
pub struct CgiWorker {
    conn: SockId,
    cpu: Nanos,
    response_bytes: u64,
    /// The request's container (resource-containers mode).
    container: Option<ContainerId>,
    stats: SharedStats,
    /// Response bytes still unsent because of send backpressure.
    pending_tx: u64,
}

impl CgiWorker {
    /// Creates a worker that will burn `cpu`, answer with
    /// `response_bytes`, and exit.
    pub fn new(
        conn: SockId,
        cpu: Nanos,
        response_bytes: u64,
        container: Option<ContainerId>,
        stats: SharedStats,
    ) -> Self {
        CgiWorker {
            conn,
            cpu,
            response_bytes,
            container,
            stats,
            pending_tx: 0,
        }
    }

    /// Closes the client connection and exits the worker.
    fn finish(&mut self, sys: &mut SysCtx<'_>) {
        let _ = sys.close(self.conn);
        self.stats.borrow_mut().cgi_completed += 1;
        // Unbind before exit so the request container can die.
        let _ = sys.bind_thread_default();
        sys.exit();
    }
}

impl AppHandler for CgiWorker {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _thread: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                if let Some(c) = self.container {
                    // Charge the dynamic processing to the request's
                    // container (§4.8), and reset the scheduler binding so
                    // the worker is scheduled *only* as that activity —
                    // otherwise its default process container would let it
                    // escape the CGI sandbox (§4.6 "Reset the scheduler
                    // binding").
                    let _ = sys.bind_thread(c);
                    sys.reset_scheduler_binding();
                }
                sys.compute(self.cpu, 0);
            }
            AppEvent::Continue { .. } => {
                let want = self.response_bytes;
                let sent = sys.send(self.conn, want).unwrap_or(want);
                if sent < want {
                    // Backpressure: drain the response before closing.
                    self.pending_tx = want - sent;
                    sys.send_wait(self.conn);
                    return;
                }
                self.finish(sys);
            }
            AppEvent::Writable { .. } => {
                let remaining = self.pending_tx;
                let sent = sys.send(self.conn, remaining).unwrap_or(remaining);
                if sent < remaining {
                    self.pending_tx = remaining - sent;
                    sys.send_wait(self.conn);
                    return;
                }
                self.pending_tx = 0;
                self.finish(sys);
            }
            _ => {}
        }
    }
}
