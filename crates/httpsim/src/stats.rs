//! Shared server-side counters read by experiment harnesses.
//!
//! The simulation is single-threaded, so harnesses and server handlers
//! share statistics through `Rc<RefCell<...>>` handles.

use std::cell::RefCell;
use std::rc::Rc;

use simcore::Nanos;

/// Counters a server updates as it serves requests.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Static responses sent.
    pub static_served: u64,
    /// CGI responses dispatched to workers.
    pub cgi_dispatched: u64,
    /// CGI responses completed (updated by the CGI workers).
    pub cgi_completed: u64,
    /// Connections accepted.
    pub accepted: u64,
    /// Connections closed by the server.
    pub closed: u64,
    /// Per-class static counts, indexed by class.
    pub per_class_served: Vec<u64>,
    /// SYN-drop notices received (§5.7).
    pub syn_drop_notices: u64,
    /// Requests aborted because the disk read failed (injected I/O
    /// error); the connection is charged for the work and closed.
    pub io_errors: u64,
    /// Flood sources isolated behind a priority-zero listener (§5.7).
    pub isolations: u64,
    /// File reads satisfied from the buffer cache.
    pub cache_hits: u64,
    /// File reads that went to the simulated disk.
    pub cache_misses: u64,
    /// Virtual time of the last served response.
    pub last_served_at: Nanos,
}

/// A shared handle to [`ServerStats`].
pub type SharedStats = Rc<RefCell<ServerStats>>;

/// Creates a fresh shared stats handle.
pub fn shared_stats() -> SharedStats {
    Rc::new(RefCell::new(ServerStats::default()))
}

impl ServerStats {
    /// Records one served static response for `class`.
    pub fn record_static(&mut self, class: usize, now: Nanos) {
        self.static_served += 1;
        if self.per_class_served.len() <= class {
            self.per_class_served.resize(class + 1, 0);
        }
        self.per_class_served[class] += 1;
        self.last_served_at = now;
    }

    /// Records whether a file read was served from the buffer cache.
    pub fn record_cache(&mut self, cached: bool) {
        if cached {
            self.cache_hits += 1;
        } else {
            self.cache_misses += 1;
        }
    }

    /// Buffer-cache hit rate over all recorded file reads (1.0 when no
    /// reads happened, so "no disk traffic" counts as perfect).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_static_grows_class_vector() {
        let mut s = ServerStats::default();
        s.record_static(2, Nanos::from_micros(5));
        assert_eq!(s.static_served, 1);
        assert_eq!(s.per_class_served, vec![0, 0, 1]);
        assert_eq!(s.last_served_at, Nanos::from_micros(5));
        s.record_static(0, Nanos::from_micros(9));
        assert_eq!(s.per_class_served, vec![1, 0, 1]);
    }

    #[test]
    fn shared_handle_aliases() {
        let h = shared_stats();
        let h2 = h.clone();
        h.borrow_mut().accepted = 5;
        assert_eq!(h2.borrow().accepted, 5);
    }
}
