//! The single-process multi-threaded server (Figure 3 / Figure 9).
//!
//! A pool of kernel threads shares one listening socket; an idle thread
//! accepts a connection, serves requests on it to completion, and returns
//! to accepting. Persistent (keep-alive) requests leave the connection
//! open and the worker parked in `read()` for the next request, like the
//! event-driven server. Under resource containers each thread sets its
//! resource binding to its connection's container (§4.8: "assigns one of
//! a pool of free threads to service the connection ... Any subsequent
//! kernel processing for this connection is charged to the connection's
//! resource container").

use std::collections::HashMap;

use rescon::{Attributes, ContainerFd, ContainerId};
use sched::TaskId;
use simcore::Nanos;
use simnet::SockId;
use simos::{AppEvent, AppHandler, ListenSpec, SysCtx};

use crate::request::decode_request;
use crate::stats::SharedStats;

/// Per-worker state.
#[derive(Debug)]
enum Worker {
    /// Waiting in `accept()`.
    Accepting,
    /// Serving a connection.
    Serving {
        conn: SockId,
        container: Option<(ContainerFd, ContainerId)>,
        /// The in-progress request is persistent: respond without closing
        /// and wait for the next request on the same connection.
        keep: bool,
        /// Response bytes still unsent because of send backpressure; the
        /// worker blocks in `send_wait` until the socket drains.
        pending_tx: u64,
    },
}

/// The thread-pool server application.
pub struct ThreadPoolServer {
    port: u16,
    pool_size: u32,
    parse_cost: Nanos,
    response_bytes: u64,
    container_per_connection: bool,
    stats: SharedStats,
    listener: Option<SockId>,
    workers: HashMap<TaskId, Worker>,
    started: bool,
}

impl ThreadPoolServer {
    /// Creates a server with `pool_size` threads.
    pub fn new(
        port: u16,
        pool_size: u32,
        parse_cost: Nanos,
        response_bytes: u64,
        container_per_connection: bool,
        stats: SharedStats,
    ) -> Self {
        ThreadPoolServer {
            port,
            pool_size: pool_size.max(1),
            parse_cost,
            response_bytes,
            container_per_connection,
            stats,
            listener: None,
            workers: HashMap::new(),
            started: false,
        }
    }

    fn try_accept(&mut self, sys: &mut SysCtx<'_>, thread: TaskId) {
        let listener = self.listener.expect("listener exists");
        match sys.accept(listener) {
            Some(conn) => {
                self.stats.borrow_mut().accepted += 1;
                let container = if sys.containers_enabled() && self.container_per_connection {
                    match sys.create_container(None, Attributes::time_shared(10)) {
                        Ok(fd) => {
                            let id = sys.resolve_fd(fd).expect("fresh fd");
                            let _ = sys.bind_socket(conn, fd);
                            // Dedicated thread: bind it to the connection's
                            // container for the connection's lifetime, and
                            // serve only that activity (§4.6).
                            let _ = sys.bind_thread(id);
                            sys.reset_scheduler_binding();
                            Some((fd, id))
                        }
                        Err(_) => None,
                    }
                } else {
                    None
                };
                self.workers.insert(
                    thread,
                    Worker::Serving {
                        conn,
                        container,
                        keep: false,
                        pending_tx: 0,
                    },
                );
                sys.read_wait(conn);
            }
            None => {
                self.workers.insert(thread, Worker::Accepting);
                sys.accept_wait(listener);
            }
        }
    }

    fn serve_readable(&mut self, sys: &mut SysCtx<'_>, thread: TaskId) {
        let Some(Worker::Serving {
            conn, container, ..
        }) = self.workers.get(&thread)
        else {
            return;
        };
        let conn = *conn;
        let charge = container.map(|(_, id)| id);
        let Ok((bytes, eof)) = sys.read(conn) else {
            // Socket vanished (e.g. reset): release the worker.
            self.finish_conn(sys, thread, false);
            return;
        };
        if bytes == 0 {
            if eof {
                self.finish_conn(sys, thread, true);
            } else {
                sys.read_wait(conn);
            }
            return;
        }
        match decode_request(bytes) {
            Some((kind, _doc)) => {
                if let Some(Worker::Serving { keep, .. }) = self.workers.get_mut(&thread) {
                    *keep = kind == crate::request::ReqKind::StaticKeepAlive;
                }
                sys.compute_charged(self.parse_cost, thread.0 as u64, charge);
            }
            None => self.finish_conn(sys, thread, true),
        }
    }

    fn respond(&mut self, sys: &mut SysCtx<'_>, thread: TaskId) {
        let Some(Worker::Serving { conn, keep, .. }) = self.workers.get(&thread) else {
            return;
        };
        let (conn, keep) = (*conn, *keep);
        let want = self.response_bytes;
        let sent = sys.send(conn, want).unwrap_or(want);
        self.stats.borrow_mut().record_static(0, sys.now());
        if sent < want {
            // Send backpressure: a dedicated worker simply blocks until
            // the socket is writable again (§4.8's thread-per-connection
            // idiom).
            if let Some(Worker::Serving { pending_tx, .. }) = self.workers.get_mut(&thread) {
                *pending_tx = want - sent;
            }
            sys.send_wait(conn);
        } else if keep {
            sys.read_wait(conn);
        } else {
            self.finish_conn(sys, thread, true);
        }
    }

    /// Continues a backpressured response after a writability wake-up.
    fn continue_send(&mut self, sys: &mut SysCtx<'_>, thread: TaskId) {
        let Some(Worker::Serving {
            conn,
            keep,
            pending_tx,
            ..
        }) = self.workers.get(&thread)
        else {
            return;
        };
        let (conn, keep, remaining) = (*conn, *keep, *pending_tx);
        if remaining == 0 {
            return;
        }
        let sent = sys.send(conn, remaining).unwrap_or(remaining);
        if let Some(Worker::Serving { pending_tx, .. }) = self.workers.get_mut(&thread) {
            *pending_tx = remaining - sent;
        }
        if sent < remaining {
            sys.send_wait(conn);
        } else if keep {
            sys.read_wait(conn);
        } else {
            self.finish_conn(sys, thread, true);
        }
    }

    fn finish_conn(&mut self, sys: &mut SysCtx<'_>, thread: TaskId, close: bool) {
        let _ = sys.bind_thread_default();
        sys.reset_scheduler_binding();
        if let Some(Worker::Serving {
            conn, container, ..
        }) = self.workers.remove(&thread)
        {
            if close {
                let _ = sys.close(conn);
                self.stats.borrow_mut().closed += 1;
            }
            if let Some((fd, _)) = container {
                let _ = sys.close_container(fd);
            }
        }
        self.try_accept(sys, thread);
    }
}

impl AppHandler for ThreadPoolServer {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, thread: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => {
                if !self.started {
                    self.started = true;
                    self.listener = Some(sys.listen(ListenSpec::port(self.port)));
                    for _ in 1..self.pool_size {
                        sys.spawn_thread();
                    }
                }
                self.try_accept(sys, thread);
            }
            AppEvent::SelectReady { ready } => {
                // A wake from accept_wait or read_wait.
                match self.workers.get(&thread) {
                    Some(Worker::Accepting) => self.try_accept(sys, thread),
                    Some(Worker::Serving { conn, .. }) => {
                        if ready.contains(conn) {
                            self.serve_readable(sys, thread);
                        } else {
                            let conn = *conn;
                            sys.read_wait(conn);
                        }
                    }
                    None => self.try_accept(sys, thread),
                }
            }
            AppEvent::Continue { .. } => self.respond(sys, thread),
            AppEvent::Writable { .. } => self.continue_send(sys, thread),
            _ => {}
        }
    }
}
