//! The single-process event-driven server (thttpd derivative) used in all
//! of the paper's experiments.
//!
//! One thread multiplexes every connection. Per §4.8 ("Containers in an
//! event-driven server", Figure 10), when containers are enabled the
//! server creates a resource container per connection, binds the
//! connection's socket to it, and sets its thread's resource binding to
//! the connection's container while working on its behalf — so both its
//! user-level work and the kernel's network processing are charged to the
//! right activity.

use std::collections::HashMap;

use rescon::{Attributes, ContainerFd, ContainerId};

use sched::TaskId;
use simcore::slab::SockTable;
use simcore::trace::NO_CONTAINER;
use simcore::Nanos;
use simnet::{CidrFilter, IpAddr, SockId, Socket};
use simos::{AppEvent, AppHandler, ListenSpec, SysCtx};

use crate::cache::FileCache;
use crate::cgi::CgiWorker;
use crate::fastcgi::{dispatch, shared_mailbox, FastCgiJob, FastCgiWorker, SharedMailbox};
use crate::request::{decode_request, ReqKind};
use crate::stats::SharedStats;

/// Which readiness API the server uses (§5.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventApi {
    /// Classic `select()`: each call scans the whole interest set.
    Select,
    /// The scalable event API of [Banga/Druschel/Mogul '98]: O(1) event
    /// delivery, in container-priority order when containers are enabled.
    Scalable,
}

/// A client class: a filtered listen socket with its own priority (§4.8).
#[derive(Clone, Debug)]
pub struct ClassSpec {
    /// Label for reports.
    pub name: String,
    /// Foreign-address filter selecting this class's clients.
    pub filter: CidrFilter,
    /// Numeric priority of the class's container (0 = starvable).
    pub priority: u32,
    /// Ask the kernel for SYN-drop notifications on this listener.
    pub notify_syn_drops: bool,
}

impl ClassSpec {
    /// The default single class: everyone, priority 10.
    pub fn default_class() -> Self {
        ClassSpec {
            name: "default".to_string(),
            filter: CidrFilter::any(),
            priority: 10,
            notify_syn_drops: false,
        }
    }
}

/// How static documents are backed (what a request pays beyond parsing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileBacking {
    /// Every document is resident in memory, as in the paper's §5.3
    /// experiments (a single cached 1 KB file).
    AlwaysCached,
    /// Legacy ablation: an in-process LRU of documents whose misses burn a
    /// flat CPU cost — the pre-`simdisk` stand-in for disk I/O.
    FlatMissCost {
        /// LRU capacity in documents.
        capacity: usize,
        /// CPU burned per miss.
        miss_cost: Nanos,
    },
    /// Documents live on the simulated disk: every static request issues
    /// `read_file`, and misses in the kernel's accounted buffer cache go
    /// through the I/O scheduler with the service time charged to the
    /// connection's container.
    Disk {
        /// Offset added to document ids to form on-disk file ids, so that
        /// servers with disjoint document trees do not share cache
        /// entries (e.g. `tenant << 32`).
        file_base: u64,
    },
}

/// Tag-space bit distinguishing disk-read completions from compute
/// continuations (connection ids stay well below this).
const DISK_TAG: u64 = 1 << 63;

/// CGI sandbox configuration (§5.6): a fixed-share parent container with a
/// CPU limit, under which every CGI request's container is reparented.
#[derive(Clone, Copy, Debug)]
pub struct CgiSandbox {
    /// Guaranteed share of the parent container.
    pub share: f64,
    /// CPU-limit fraction (the sandbox wall).
    pub limit: f64,
    /// Averaging window of the limit.
    pub window: Nanos,
}

/// Event-driven server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listening port.
    pub port: u16,
    /// Readiness API.
    pub api: EventApi,
    /// User-level CPU to parse a request and prepare the response.
    pub parse_cost: Nanos,
    /// Static response size.
    pub response_bytes: u64,
    /// Create one container per connection (vs. sharing the class
    /// container), as in §5.4's overhead check.
    pub container_per_connection: bool,
    /// Client classes; at least one.
    pub classes: Vec<ClassSpec>,
    /// CPU burned by each CGI request (§5.6: "about 2 seconds").
    pub cgi_cpu: Nanos,
    /// CGI response size.
    pub cgi_response_bytes: u64,
    /// Optional CGI sandbox (§5.6). Ignored when containers are disabled.
    pub cgi_sandbox: Option<CgiSandbox>,
    /// Enable the SYN-flood defense (§5.7): isolate flooding prefixes
    /// behind a priority-zero filtered listener.
    pub defense: bool,
    /// Prefix length used when isolating a flood source.
    pub defense_mask: u8,
    /// SYN-drop notices from one prefix before it is isolated.
    pub defense_threshold: u32,
    /// How static documents are backed (resident, flat miss cost, or the
    /// simulated disk).
    pub files: FileBacking,
    /// Hierarchy placement: per-connection and per-class containers (and
    /// the CGI sandbox) are created under this container — e.g. a guest
    /// server's root container in the Rent-A-Server experiment (§5.8).
    pub conn_parent: Option<ContainerId>,
    /// CGI worker processes' default containers are created under this
    /// container (lets harnesses account baseline CGI CPU).
    pub cgi_container_parent: Option<ContainerId>,
    /// Application-level preference: ready connections whose peer matches
    /// are handled first (the baseline's best effort in Figure 11:
    /// "handling events on its socket ... before events on other
    /// sockets").
    pub preferred: Option<CidrFilter>,
    /// Persistent FastCGI workers (paper §2); 0 = classic fork-per-request
    /// CGI.
    pub fastcgi_workers: u32,
    /// Kernel memory reserved per in-flight request (modelling request
    /// parse buffers and response headers), released when the response is
    /// prepared or the connection torn down. Zero (the default) skips the
    /// reservation entirely; on memory-limited kernels a non-zero value
    /// drives the simmem charge/reclaim path once per request.
    pub request_kmem: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 80,
            api: EventApi::Scalable,
            parse_cost: Nanos::from_micros(47),
            response_bytes: 1024,
            container_per_connection: true,
            classes: vec![ClassSpec::default_class()],
            cgi_cpu: Nanos::from_secs(2),
            cgi_response_bytes: 1024,
            cgi_sandbox: None,
            defense: false,
            defense_mask: 16,
            defense_threshold: 32,
            files: FileBacking::AlwaysCached,
            conn_parent: None,
            cgi_container_parent: None,
            preferred: None,
            fastcgi_workers: 0,
            request_kmem: 0,
        }
    }
}

/// Per-connection server state.
#[derive(Debug)]
struct Conn {
    class: usize,
    container: Option<(ContainerFd, ContainerId)>,
    /// Decoded request awaiting its parse continuation.
    pending_req: Option<(ReqKind, u32)>,
    /// Virtual time the in-flight request was read off the socket; feeds
    /// the per-container latency histogram when the response goes out.
    req_start: Nanos,
    /// Kernel memory currently reserved for the in-flight request
    /// (non-zero only with [`ServerConfig::request_kmem`]).
    kmem: u64,
}

/// The event-driven server application.
pub struct EventDrivenServer {
    cfg: ServerConfig,
    stats: SharedStats,
    /// Listener sockets, parallel to `cfg.classes` (+ defense listeners).
    listeners: Vec<SockId>,
    /// Class container of each listener (containers mode).
    class_containers: Vec<Option<(ContainerFd, ContainerId)>>,
    conns: SockTable<Socket, Conn>,
    /// Responses stalled by send backpressure: remaining bytes and
    /// whether the connection closes once the response drains.
    tx_pending: SockTable<Socket, (u64, bool)>,
    by_tag: HashMap<u64, SockId>,
    cgi_parent: Option<(ContainerFd, ContainerId)>,
    /// Open handle to `cfg.conn_parent`, if any.
    conn_parent_fd: Option<ContainerFd>,
    /// FastCGI mailbox when a persistent pool is configured.
    fastcgi: Option<SharedMailbox>,
    cache: Option<FileCache>,
    /// Compute continuations in flight; the wait is re-armed at zero.
    pending: u32,
    /// SYN-drop notices per /N prefix.
    drop_counts: HashMap<u32, u32>,
    /// Prefixes that have completed handshakes: never isolated (a flood
    /// source, by definition, never completes one).
    known_good: Vec<u32>,
    isolated: Vec<u32>,
    started: bool,
}

impl EventDrivenServer {
    /// Creates a server with the given configuration and shared stats.
    pub fn new(cfg: ServerConfig, stats: SharedStats) -> Self {
        let cache = match cfg.files {
            FileBacking::FlatMissCost {
                capacity,
                miss_cost,
            } => Some(FileCache::new(capacity, cfg.response_bytes, miss_cost)),
            FileBacking::AlwaysCached | FileBacking::Disk { .. } => None,
        };
        EventDrivenServer {
            cfg,
            stats,
            listeners: Vec::new(),
            class_containers: Vec::new(),
            conns: SockTable::new(),
            tx_pending: SockTable::new(),
            by_tag: HashMap::new(),
            cgi_parent: None,
            conn_parent_fd: None,
            fastcgi: None,
            cache,
            pending: 0,
            drop_counts: HashMap::new(),
            known_good: Vec::new(),
            isolated: Vec::new(),
            started: false,
        }
    }

    fn start(&mut self, sys: &mut SysCtx<'_>) {
        debug_assert!(!self.started);
        self.started = true;
        if sys.containers_enabled() {
            if let Some(parent) = self.cfg.conn_parent {
                self.conn_parent_fd = sys.open_container(parent).ok();
            }
        }
        let parent_fd = self.conn_parent_fd;
        let classes = self.cfg.classes.clone();
        for class in &classes {
            let mut spec = ListenSpec::port(self.cfg.port).filter(class.filter);
            if class.notify_syn_drops {
                spec = spec.notify_syn_drops();
            }
            let l = sys.listen(spec);
            let cc = if sys.containers_enabled() {
                let fd = sys
                    .create_container(
                        parent_fd,
                        Attributes::time_shared(class.priority).named(&class.name),
                    )
                    .expect("class container");
                let id = sys.resolve_fd(fd).expect("fresh fd");
                sys.bind_socket(l, fd).expect("bind listener");
                // The server thread serves this class: keep the class
                // container in its scheduler binding so it is scheduled at
                // the combined priority of the classes it serves (§4.3).
                let _ = sys.join_scheduler_binding(id);
                Some((fd, id))
            } else {
                None
            };
            self.listeners.push(l);
            self.class_containers.push(cc);
            if self.cfg.api == EventApi::Scalable {
                sys.event_register(l);
            }
        }
        if self.cfg.fastcgi_workers > 0 {
            let mailbox = shared_mailbox();
            for i in 0..self.cfg.fastcgi_workers {
                let worker = FastCgiWorker::new(
                    mailbox.clone(),
                    self.cfg.cgi_cpu,
                    self.cfg.cgi_response_bytes,
                    self.stats.clone(),
                );
                sys.spawn_process(
                    Box::new(worker),
                    &format!("fastcgi-{i}"),
                    self.cfg.cgi_container_parent,
                    Attributes::time_shared(10),
                );
            }
            self.fastcgi = Some(mailbox);
        }
        if sys.containers_enabled() {
            if let Some(sandbox) = self.cfg.cgi_sandbox {
                let attrs = Attributes::fixed_share(sandbox.share)
                    .with_cpu_limit(sandbox.limit, sandbox.window)
                    .named("cgi-parent");
                let fd = sys
                    .create_container(self.conn_parent_fd, attrs)
                    .expect("cgi parent");
                let id = sys.resolve_fd(fd).expect("fresh fd");
                self.cgi_parent = Some((fd, id));
            }
        }
        self.rearm(sys);
    }

    fn rearm(&mut self, sys: &mut SysCtx<'_>) {
        if self.pending > 0 {
            return;
        }
        match self.cfg.api {
            EventApi::Select => {
                let mut socks = self.listeners.clone();
                socks.extend(self.conns.keys());
                socks.sort();
                sys.select_wait(socks);
            }
            EventApi::Scalable => sys.event_wait(),
        }
    }

    fn accept_all(&mut self, sys: &mut SysCtx<'_>, listener: SockId) {
        let class = self
            .listeners
            .iter()
            .position(|&l| l == listener)
            .unwrap_or(0);
        // Refresh the class container in the scheduler binding (it would
        // otherwise be pruned as stale).
        if let Some(Some((_, class_id))) = self.class_containers.get(class) {
            let _ = sys.join_scheduler_binding(*class_id);
        }
        while let Some(conn) = sys.accept(listener) {
            self.reclaim_stale(sys, conn);
            self.stats.borrow_mut().accepted += 1;
            // A completed handshake vouches for the peer's prefix: it is
            // not a spoofing flood source (§5.7 assumes the network rejects
            // spoofed sources, so established peers are distinguishable).
            if self.cfg.defense {
                if let Some(peer) = sys.peer_addr(conn) {
                    let mask = CidrFilter::new(peer, self.cfg.defense_mask);
                    let prefix = peer.0 & mask.mask();
                    if !self.known_good.contains(&prefix) {
                        self.known_good.push(prefix);
                    }
                    self.drop_counts.remove(&prefix);
                }
            }
            let container = if sys.containers_enabled() && self.cfg.container_per_connection {
                let prio = self
                    .cfg
                    .classes
                    .get(class)
                    .map(|c| c.priority)
                    .unwrap_or(10);
                match sys.create_container(self.conn_parent_fd, Attributes::time_shared(prio)) {
                    Ok(fd) => {
                        let id = sys.resolve_fd(fd).expect("fresh fd");
                        let _ = sys.bind_socket(conn, fd);
                        Some((fd, id))
                    }
                    Err(_) => None,
                }
            } else {
                None
            };
            if self.cfg.api == EventApi::Scalable {
                sys.event_register(conn);
            }
            self.conns.insert(
                conn,
                Conn {
                    class,
                    container,
                    pending_req: None,
                    req_start: Nanos::ZERO,
                    kmem: 0,
                },
            );
        }
    }

    fn handle_readable(&mut self, sys: &mut SysCtx<'_>, conn: SockId) {
        let Some(state) = self.conns.get_mut(conn) else {
            return;
        };
        let Ok((bytes, eof)) = sys.read(conn) else {
            // The socket vanished under us (e.g. reset while the event was
            // queued): drop our state without a redundant close.
            self.teardown_conn(sys, conn, false);
            return;
        };
        if bytes == 0 {
            if eof {
                self.teardown_conn(sys, conn, true);
            }
            return;
        }
        let Some((kind, doc)) = decode_request(bytes) else {
            // Garbage request: drop the connection.
            self.teardown_conn(sys, conn, true);
            return;
        };
        state.pending_req = Some((kind, doc));
        state.req_start = sys.now();
        // Attach the connection's request span (rcspan) to the serving
        // thread so the parse/compute work items are attributed to it.
        sys.span_attach(conn);
        // Charge user work to the connection's activity: set the thread's
        // resource binding (§4.8) and tag the work item explicitly.
        let charge = state.container.map(|(_, id)| id);
        if let Some(id) = charge {
            let _ = sys.bind_thread(id);
        }
        // Per-request kernel buffers: charged to the request's principal,
        // so a memory-limited tenant pays its own reclaim stalls here.
        let want_kmem = self.cfg.request_kmem;
        if want_kmem > 0 && sys.kmem_reserve(want_kmem).is_ok() {
            state.kmem += want_kmem;
        }
        let mut cost = self.cfg.parse_cost;
        if let Some(cache) = self.cache.as_mut() {
            if !cache.lookup(doc) {
                cost += cache.miss_cost();
            }
        }
        let tag = conn.as_u64();
        self.by_tag.insert(tag, conn);
        self.pending += 1;
        sys.compute_charged(cost, tag, charge);
    }

    /// Continues a request after its parse CPU: static requests on a
    /// disk-backed server issue `read_file` (buffer-cache hits queue the
    /// copy immediately; misses complete out-of-band once the disk has
    /// served them); everything else responds right away.
    fn continue_request(&mut self, sys: &mut SysCtx<'_>, conn: SockId) {
        if let FileBacking::Disk { file_base } = self.cfg.files {
            if let Some(state) = self.conns.get(conn) {
                if let Some((ReqKind::Static | ReqKind::StaticKeepAlive, doc)) = state.pending_req {
                    let charge = state.container.map(|(_, id)| id);
                    let tag = DISK_TAG | conn.as_u64();
                    self.by_tag.insert(tag, conn);
                    sys.read_file(file_base + doc as u64, self.cfg.response_bytes, tag, charge);
                    return;
                }
            }
        }
        self.finish_request(sys, conn);
    }

    fn finish_request(&mut self, sys: &mut SysCtx<'_>, conn: SockId) {
        let Some(state) = self.conns.get_mut(conn) else {
            return;
        };
        let Some((kind, _doc)) = state.pending_req.take() else {
            return;
        };
        if state.kmem > 0 {
            sys.kmem_release(state.kmem);
            state.kmem = 0;
        }
        let class = state.class;
        let started = state.req_start;
        let conn_container = state.container.map(|(_, id)| id);
        match kind {
            ReqKind::Static | ReqKind::StaticKeepAlive => {
                let want = self.cfg.response_bytes;
                let sent = sys.send(conn, want).unwrap_or(want);
                let now = sys.now();
                self.stats.borrow_mut().record_static(class, now);
                if rctrace::active() {
                    // Attribute the latency to the request's activity: its
                    // own container if it has one, else its class's.
                    let principal = conn_container
                        .or_else(|| {
                            self.class_containers
                                .get(class)
                                .and_then(|c| c.map(|(_, id)| id))
                        })
                        .map(|c| c.as_u64())
                        .unwrap_or(NO_CONTAINER);
                    rctrace::record_latency(principal, now - started, now, sys.span_of(conn));
                }
                if sent >= want {
                    // Response fully queued: the request's span finishes
                    // when its last byte leaves the wire.
                    sys.span_finish_on_tx(conn);
                }
                if sent < want {
                    // Send backpressure (§4.4's sockbuf limit made real):
                    // remember the unsent tail and finish as the link
                    // drains — by writability event under the scalable
                    // API, by blocking under classic select().
                    self.tx_pending
                        .insert(conn, (want - sent, kind == ReqKind::Static));
                    match self.cfg.api {
                        EventApi::Scalable => sys.event_register_writable(conn),
                        EventApi::Select => sys.send_wait(conn),
                    }
                } else if kind == ReqKind::Static {
                    self.teardown_conn(sys, conn, true);
                }
            }
            ReqKind::Cgi => {
                self.dispatch_cgi(sys, conn);
            }
        }
    }

    fn dispatch_cgi(&mut self, sys: &mut SysCtx<'_>, conn: SockId) {
        let Some(state) = self.conns.get_mut(conn) else {
            return;
        };
        let container = state.container;
        if state.kmem > 0 {
            sys.kmem_release(state.kmem);
            state.kmem = 0;
        }
        self.stats.borrow_mut().cgi_dispatched += 1;
        // §5.6: each CGI request's container becomes a child of the
        // CGI-parent container, putting it inside the resource sandbox.
        if let (Some((fd, _id)), Some((parent_fd, _))) = (container, self.cgi_parent) {
            let _ = sys.set_container_parent(fd, Some(parent_fd));
        }
        if let Some(mailbox) = self.fastcgi.clone() {
            // Persistent FastCGI: hand the request to the pool instead of
            // forking (§2).
            dispatch(
                &mailbox,
                sys,
                FastCgiJob {
                    conn,
                    container: container.map(|(_, id)| id),
                },
            );
            let _ = sys.bind_thread_default();
            if let Some(st) = self.conns.remove(conn) {
                self.by_tag.remove(&conn.as_u64());
                if let Some((fd, _)) = st.container {
                    let _ = sys.close_container(fd);
                }
            }
            return;
        }
        let worker = CgiWorker::new(
            conn,
            self.cfg.cgi_cpu,
            self.cfg.cgi_response_bytes,
            container.map(|(_, id)| id),
            self.stats.clone(),
        );
        // The CGI child is a plain process: in the baselines it thereby
        // becomes its own resource principal; under containers its thread
        // immediately binds to the request's container.
        let cgi_pid = sys.spawn_process(
            Box::new(worker),
            "cgi",
            self.cfg.cgi_container_parent,
            Attributes::time_shared(10),
        );
        // Pass the connection (and its container, §4.8: "pass the
        // connection's container to the CGI process").
        sys.pass_socket(conn, cgi_pid);
        if let Some((fd, _)) = container {
            let _ = sys.pass_container(fd, cgi_pid);
        }
        // The server is done with this connection.
        let _ = sys.bind_thread_default();
        if let Some(st) = self.conns.remove(conn) {
            self.by_tag.remove(&conn.as_u64());
            if let Some((fd, _)) = st.container {
                let _ = sys.close_container(fd);
            }
        }
    }

    /// Continues a response stalled by send backpressure: the kernel
    /// signalled the socket writable, so push the remaining bytes (again
    /// charged to the connection's activity) and finish the teardown or
    /// pipeline once the response has fully drained.
    fn continue_send(&mut self, sys: &mut SysCtx<'_>, conn: SockId) {
        let Some(&(remaining, close_after)) = self.tx_pending.get(conn) else {
            return;
        };
        if let Some(state) = self.conns.get(conn) {
            if let Some((_, id)) = state.container {
                let _ = sys.bind_thread(id);
            }
        }
        let sent = sys.send(conn, remaining).unwrap_or(remaining);
        if sent >= remaining {
            // The backpressured tail is fully queued: arm the span's
            // finish-on-last-wire-byte.
            sys.span_finish_on_tx(conn);
            self.tx_pending.remove(conn);
            if self.cfg.api == EventApi::Scalable {
                sys.event_deregister_writable(conn);
            }
            let _ = sys.bind_thread_default();
            if close_after {
                self.teardown_conn(sys, conn, true);
            } else {
                // A readable event may have been coalesced with this
                // writability notice; poll the socket so pipelined
                // requests are not stranded.
                self.handle_readable(sys, conn);
            }
        } else {
            self.tx_pending
                .insert(conn, (remaining - sent, close_after));
            if self.cfg.api == EventApi::Select {
                sys.send_wait(conn);
            }
        }
    }

    fn teardown_conn(&mut self, sys: &mut SysCtx<'_>, conn: SockId, close: bool) {
        // Rebind away from the per-connection container before dropping
        // the final references so it can be destroyed.
        let _ = sys.bind_thread_default();
        self.tx_pending.remove(conn);
        if let Some(st) = self.conns.remove(conn) {
            self.by_tag.remove(&conn.as_u64());
            self.by_tag.remove(&(DISK_TAG | conn.as_u64()));
            if st.kmem > 0 {
                sys.kmem_release(st.kmem);
            }
            if close {
                let _ = sys.close(conn);
                self.stats.borrow_mut().closed += 1;
            }
            if let Some((fd, _)) = st.container {
                let _ = sys.close_container(fd);
            }
        } else if close {
            let _ = sys.close(conn);
        }
    }

    /// Reclaims per-connection state orphaned by a socket that died
    /// without this server noticing — a fault-injected reset while the
    /// connection was parked in a wait set produces no readable event,
    /// so `teardown_conn` never ran. Once the kernel recycles the slot
    /// for a fresh accept the old state is unreachable forever; release
    /// its kernel-memory charge and per-connection container now,
    /// exactly as `teardown_conn` would have, minus the socket close
    /// (the socket is already gone). Keeping this on the accept path is
    /// what lets `SockTable`'s insert-time use-after-free assert stay
    /// strict.
    fn reclaim_stale(&mut self, sys: &mut SysCtx<'_>, fresh: SockId) {
        self.tx_pending.remove_stale(fresh);
        if let Some((old, st)) = self.conns.remove_stale(fresh) {
            self.by_tag.remove(&old.as_u64());
            self.by_tag.remove(&(DISK_TAG | old.as_u64()));
            if st.kmem > 0 {
                sys.kmem_release(st.kmem);
            }
            if let Some((fd, _)) = st.container {
                let _ = sys.close_container(fd);
            }
        }
    }

    fn handle_ready(&mut self, sys: &mut SysCtx<'_>, mut ready: Vec<SockId>) {
        if let Some(pref) = self.cfg.preferred {
            // Best-effort user-level prioritization (Figure 11 baseline).
            ready.sort_by_key(|&s| {
                let preferred = sys.peer_addr(s).map(|a| pref.matches(a)).unwrap_or(false);
                if preferred {
                    0u8
                } else {
                    1u8
                }
            });
        }
        for s in ready {
            if self.listeners.contains(&s) {
                self.accept_all(sys, s);
            } else if self.tx_pending.contains_key(s) {
                // Writability notice: a stalled response may resume.
                self.continue_send(sys, s);
            } else if self.conns.contains_key(s) {
                self.handle_readable(sys, s);
            }
        }
        self.rearm(sys);
    }

    fn handle_syn_drop(&mut self, sys: &mut SysCtx<'_>, _listener: SockId, src: IpAddr) {
        self.stats.borrow_mut().syn_drop_notices += 1;
        if !self.cfg.defense || !sys.containers_enabled() {
            return;
        }
        let mask = CidrFilter::new(src, self.cfg.defense_mask);
        let prefix = src.0 & mask.mask();
        if self.isolated.contains(&prefix) || self.known_good.contains(&prefix) {
            return;
        }
        let n = self.drop_counts.entry(prefix).or_insert(0);
        *n += 1;
        if *n < self.cfg.defense_threshold {
            return;
        }
        // §5.7: isolate the misbehaving clients on a filtered listener
        // bound to a container with numeric priority zero.
        self.isolated.push(prefix);
        self.stats.borrow_mut().isolations += 1;
        let flt = CidrFilter::new(IpAddr(prefix), self.cfg.defense_mask);
        let l = sys.listen(ListenSpec::port(self.cfg.port).filter(flt));
        if let Ok(fd) = sys.create_container(None, Attributes::time_shared(0).named("isolated")) {
            let _ = sys.bind_socket(l, fd);
        }
        self.listeners.push(l);
        self.class_containers.push(None);
        self.cfg.classes.push(ClassSpec {
            name: "isolated".to_string(),
            filter: flt,
            priority: 0,
            notify_syn_drops: false,
        });
        if self.cfg.api == EventApi::Scalable {
            sys.event_register(l);
        }
        // Note: no re-arm here — this upcall was delivered out-of-band and
        // the kernel restores the server's wait when it returns.
    }
}

impl AppHandler for EventDrivenServer {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _thread: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => self.start(sys),
            AppEvent::SelectReady { ready } | AppEvent::EventReady { events: ready } => {
                self.handle_ready(sys, ready)
            }
            AppEvent::Continue { tag } => {
                self.pending = self.pending.saturating_sub(1);
                if let Some(conn) = self.by_tag.get(&tag).copied() {
                    self.continue_request(sys, conn);
                }
                self.rearm(sys);
            }
            AppEvent::FileRead { tag, bytes, cached } => {
                if let Some(conn) = self.by_tag.remove(&tag) {
                    self.stats.borrow_mut().record_cache(cached);
                    // The thread may have served other connections while
                    // the disk was busy: rebind to this connection's
                    // container before responding on its behalf.
                    if let Some(state) = self.conns.get(conn) {
                        if let Some((_, id)) = state.container {
                            let _ = sys.bind_thread(id);
                        }
                    }
                    sys.span_attach(conn);
                    if bytes == 0 {
                        // Short read: the disk failed the request. The
                        // connection already paid for the parse and the
                        // wasted service time; abort it rather than send
                        // a response backed by nothing.
                        self.stats.borrow_mut().io_errors += 1;
                        self.teardown_conn(sys, conn, true);
                    } else {
                        self.finish_request(sys, conn);
                    }
                }
                self.rearm(sys);
            }
            AppEvent::Writable { sock } => {
                // Out-of-band writability upcall (the select()-mode
                // blocking path): resume the stalled response. If it
                // drained, the blocking send released the thread — re-arm
                // the wait it displaced.
                self.continue_send(sys, sock);
                if !self.tx_pending.contains_key(sock) {
                    self.rearm(sys);
                }
            }
            AppEvent::SynDropNotice { listener, src } => self.handle_syn_drop(sys, listener, src),
            AppEvent::ConnReset { conn } => {
                // Peer reset mid-stream: the kernel already dropped the
                // socket; release our connection state and its container.
                // (Delivered out-of-band: no re-arm.)
                self.teardown_conn(sys, conn, true);
            }
            AppEvent::Timer { .. } => self.rearm(sys),
            AppEvent::ChildExited { .. } => {
                // CGI child finished; nothing to do — it answered the
                // client directly. (Delivered out-of-band: no re-arm.)
            }
            AppEvent::Ipc { .. } => {
                // This server model does not use IPC (see the FastCGI
                // pool). Delivered out-of-band: no re-arm.
            }
            AppEvent::MemKill { .. } => {
                // A container this server held kernel memory under was
                // OOM-killed; the per-connection teardown already arrived
                // as individual ConnReset upcalls. (Out-of-band: no
                // re-arm.)
            }
        }
    }
}
