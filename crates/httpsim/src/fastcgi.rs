//! Persistent CGI workers (FastCGI, paper §2: "the newer FastCGI allows
//! persistent CGI processes").
//!
//! Instead of forking a process per dynamic request, a fixed pool of
//! worker processes is spawned once. The dispatching server passes the
//! client connection (and, under resource containers, the request's
//! container) to an idle worker and rings its IPC doorbell; the worker
//! binds to the request's container, burns the dynamic-processing CPU,
//! answers the client directly, rebinds to its default container, and
//! reports back idle.
//!
//! Shared dispatcher/worker state travels through an `Rc<RefCell<..>>`
//! mailbox — the simulation analog of the FastCGI connection's request
//! records.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use rescon::ContainerId;
use sched::TaskId;
use simcore::Nanos;
use simnet::SockId;
use simos::{AppEvent, AppHandler, Pid, SysCtx};

use crate::stats::SharedStats;

/// One dynamic request handed to a worker.
#[derive(Clone, Copy, Debug)]
pub struct FastCgiJob {
    /// The client connection to answer.
    pub conn: SockId,
    /// The request's container (resource-containers mode).
    pub container: Option<ContainerId>,
}

/// The mailbox shared between the dispatcher and its workers.
#[derive(Debug, Default)]
pub struct FastCgiMailbox {
    /// Jobs not yet assigned.
    pub queue: VecDeque<FastCgiJob>,
    /// Pids of workers with nothing to do.
    pub idle: Vec<Pid>,
    /// Jobs completed over the pool's lifetime.
    pub completed: u64,
}

/// Shared handle to the mailbox.
pub type SharedMailbox = Rc<RefCell<FastCgiMailbox>>;

/// Creates an empty shared mailbox.
pub fn shared_mailbox() -> SharedMailbox {
    Rc::new(RefCell::new(FastCgiMailbox::default()))
}

/// Doorbell tag rung on workers when a job is queued.
pub const FASTCGI_RING: u64 = 0xfc91;

/// Dispatch helper used by a server handler: queue the job and wake an
/// idle worker if one exists.
pub fn dispatch(mailbox: &SharedMailbox, sys: &mut SysCtx<'_>, job: FastCgiJob) {
    let worker = {
        let mut mb = mailbox.borrow_mut();
        mb.queue.push_back(job);
        mb.idle.pop()
    };
    if let Some(w) = worker {
        sys.send_ipc(w, FASTCGI_RING);
    }
}

/// A persistent CGI worker process.
pub struct FastCgiWorker {
    mailbox: SharedMailbox,
    /// CPU burned per request.
    pub cpu: Nanos,
    /// Response size.
    pub response_bytes: u64,
    stats: SharedStats,
    current: Option<FastCgiJob>,
    /// Response bytes still unsent because of send backpressure; the job
    /// is not complete (and the worker takes no new one) until it drains.
    pending_tx: u64,
}

impl FastCgiWorker {
    /// Creates a worker attached to `mailbox`.
    pub fn new(
        mailbox: SharedMailbox,
        cpu: Nanos,
        response_bytes: u64,
        stats: SharedStats,
    ) -> Self {
        FastCgiWorker {
            mailbox,
            cpu,
            response_bytes,
            stats,
            current: None,
            pending_tx: 0,
        }
    }

    /// Closes the finished job's connection, rebinds, and reports done.
    fn finish_job(&mut self, sys: &mut SysCtx<'_>, job: FastCgiJob) {
        let _ = sys.close(job.conn);
        let _ = sys.bind_thread_default();
        sys.reset_scheduler_binding();
        self.mailbox.borrow_mut().completed += 1;
        self.stats.borrow_mut().cgi_completed += 1;
    }

    /// Takes the next job if any; otherwise parks as idle.
    fn take_or_park(&mut self, sys: &mut SysCtx<'_>) {
        debug_assert!(self.current.is_none());
        let job = self.mailbox.borrow_mut().queue.pop_front();
        match job {
            Some(job) => {
                self.current = Some(job);
                if let Some(c) = job.container {
                    // §4.8: dynamic processing is charged to the request's
                    // container; a persistent worker serves one activity at
                    // a time, so it also resets its scheduler binding.
                    let _ = sys.bind_thread(c);
                    sys.reset_scheduler_binding();
                }
                sys.compute(self.cpu, 0);
            }
            None => {
                let pid = sys.pid();
                self.mailbox.borrow_mut().idle.push(pid);
                // Park until the dispatcher rings; a very long sleep keeps
                // the thread alive without burning CPU.
                sys.sleep_until(Nanos::MAX, FASTCGI_RING);
            }
        }
    }
}

impl AppHandler for FastCgiWorker {
    fn on_event(&mut self, sys: &mut SysCtx<'_>, _thread: TaskId, ev: AppEvent) {
        match ev {
            AppEvent::Start => self.take_or_park(sys),
            AppEvent::Ipc {
                tag: FASTCGI_RING, ..
            }
            | AppEvent::Timer { tag: FASTCGI_RING }
                if self.current.is_none() =>
            {
                // Rung (or a stale park timer fired): if idle, grab work.
                let pid = sys.pid();
                self.mailbox.borrow_mut().idle.retain(|&p| p != pid);
                self.take_or_park(sys);
            }
            AppEvent::Continue { .. } => {
                if let Some(job) = self.current {
                    let want = self.response_bytes;
                    let sent = sys.send(job.conn, want).unwrap_or(want);
                    if sent < want {
                        // Backpressure: stay on this job until it drains.
                        self.pending_tx = want - sent;
                        sys.send_wait(job.conn);
                        return;
                    }
                    self.current = None;
                    self.finish_job(sys, job);
                }
                self.take_or_park(sys);
            }
            AppEvent::Writable { .. } => {
                if let Some(job) = self.current {
                    let remaining = self.pending_tx;
                    let sent = sys.send(job.conn, remaining).unwrap_or(remaining);
                    if sent < remaining {
                        self.pending_tx = remaining - sent;
                        sys.send_wait(job.conn);
                        return;
                    }
                    self.pending_tx = 0;
                    self.current = None;
                    self.finish_job(sys, job);
                }
                self.take_or_park(sys);
            }
            _ => {}
        }
    }
}
