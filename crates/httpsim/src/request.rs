//! Request encoding: the request kind and document id ride in the request
//! length.
//!
//! The simulation does not model request bytes; what the experiments need
//! is *which kind* of request arrived (static, keep-alive static, CGI) and
//! *which document* it names. Both are encoded into the request's payload
//! length — standing in for the URL parsing a real server performs (whose
//! CPU cost the server charges separately).

/// The kinds of HTTP request the servers distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqKind {
    /// Static document; connection closes after the response (HTTP/1.0).
    Static,
    /// Static document on a persistent connection (HTTP/1.1).
    StaticKeepAlive,
    /// Dynamic (CGI) resource; handled by an auxiliary process.
    Cgi,
}

/// Base length of an encoded request.
const BASE: u32 = 200;

/// Encodes `(kind, doc_id)` as a request payload length.
///
/// # Examples
///
/// ```
/// use httpsim::{decode_request, encode_request, ReqKind};
///
/// let len = encode_request(ReqKind::Cgi, 7);
/// assert_eq!(decode_request(len as u64), Some((ReqKind::Cgi, 7)));
/// ```
pub fn encode_request(kind: ReqKind, doc_id: u32) -> u32 {
    let k = match kind {
        ReqKind::Static => 0,
        ReqKind::StaticKeepAlive => 1,
        ReqKind::Cgi => 2,
    };
    BASE + k + doc_id * 16
}

/// Decodes a request payload length back to `(kind, doc_id)`; `None` for
/// lengths that are not valid encodings (e.g. a partial read).
pub fn decode_request(len: u64) -> Option<(ReqKind, u32)> {
    if len < BASE as u64 {
        return None;
    }
    let v = (len - BASE as u64) as u32;
    let kind = match v % 16 {
        0 => ReqKind::Static,
        1 => ReqKind::StaticKeepAlive,
        2 => ReqKind::Cgi,
        _ => return None,
    };
    Some((kind, v / 16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [ReqKind::Static, ReqKind::StaticKeepAlive, ReqKind::Cgi] {
            for doc in [0, 1, 7, 1000] {
                let len = encode_request(kind, doc);
                assert_eq!(decode_request(len as u64), Some((kind, doc)));
            }
        }
    }

    #[test]
    fn invalid_lengths_rejected() {
        assert_eq!(decode_request(0), None);
        assert_eq!(decode_request(199), None);
        assert_eq!(decode_request((BASE + 5) as u64), None);
    }

    #[test]
    fn encodings_distinct() {
        let a = encode_request(ReqKind::Static, 3);
        let b = encode_request(ReqKind::StaticKeepAlive, 3);
        let c = encode_request(ReqKind::Cgi, 3);
        let d = encode_request(ReqKind::Static, 4);
        let set: std::collections::HashSet<u32> = [a, b, c, d].into_iter().collect();
        assert_eq!(set.len(), 4);
    }
}
