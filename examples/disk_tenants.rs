//! Disk-bandwidth isolation (paper §7): a disk-hog tenant and a
//! small-file tenant with 70/30 fixed shares contend for one disk, under
//! the FIFO I/O scheduler (the unmodified-kernel ablation) and under the
//! container-share scheduler.
//!
//! ```sh
//! cargo run --release --example disk_tenants
//! ```

use resource_containers::prelude::*;

fn main() {
    println!("two disk-bound tenants, 70/30 fixed shares, 8 clients each\n");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "sched", "hog disk%", "victim disk%", "hog req/s", "victim req/s"
    );
    for sched in [DiskSchedKind::Fifo, DiskSchedKind::Share] {
        let r = run_disk_tenants(DiskTenantsParams {
            sched,
            secs: 10,
            ..DiskTenantsParams::default()
        });
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>14.1} {:>14.1}",
            r.sched,
            r.disk_fractions[0] * 100.0,
            r.disk_fractions[1] * 100.0,
            r.throughputs[0],
            r.throughputs[1]
        );
    }
    println!(
        "\nThe disk charges every request's seek+rotation+transfer time to the\n\
         requesting container; the share-aware I/O scheduler dispatches queued\n\
         requests by container share, so the measured bandwidth split tracks\n\
         the configured 70/30 no matter how hard the hog pushes (§7)."
    );
}
