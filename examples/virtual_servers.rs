//! Rent-A-Server isolation (paper §5.8): three guest web servers with
//! fixed CPU shares, each free to subdivide its own allocation.
//!
//! ```sh
//! cargo run --release --example virtual_servers
//! ```

use resource_containers::prelude::*;

fn main() {
    let params = VsParams {
        shares: vec![0.5, 0.3, 0.2],
        clients_per_guest: vec![16, 16, 16],
        cgi_cpu: Some(Nanos::from_millis(300)),
        secs: 15,
    };
    let shares = params.shares.clone();
    let r = run_virtual_servers(params);

    println!("three guest servers on one host, mixed static + CGI load\n");
    println!(
        "{:<10} {:>12} {:>12} {:>16}",
        "guest", "configured", "measured", "static req/s"
    );
    for (g, share) in shares.iter().enumerate() {
        println!(
            "guest-{g:<4} {:>11.1}% {:>11.1}% {:>16.0}",
            share * 100.0,
            r.measured[g] * 100.0,
            r.throughputs[g]
        );
    }
    println!(
        "\nEach guest's containers (connections, CGI sandbox, even its server\n\
         process) live under the guest's root container, so the hierarchy\n\
         enforces the hosting contract no matter what each tenant runs (§5.8)."
    );
}
