//! SYN-flood immunity (paper §5.7 / Figure 14): isolating attack traffic
//! behind a filtered, priority-zero listener.
//!
//! ```sh
//! cargo run --release --example syn_flood_defense
//! ```

use resource_containers::prelude::*;

fn main() {
    println!("useful throughput under a SYN flood (16 well-behaved clients)\n");
    println!(
        "{:<12} {:>18} {:>18}",
        "SYN rate", "unmodified (req/s)", "defended (req/s)"
    );
    for rate in [0.0, 5_000.0, 10_000.0, 30_000.0] {
        let plain = run_fig14(Fig14Params {
            defended: false,
            syn_rate: rate,
            clients: 16,
            secs: 8,
        });
        let defended = run_fig14(Fig14Params {
            defended: true,
            syn_rate: rate,
            clients: 16,
            secs: 8,
        });
        println!(
            "{:>8.0}/s {:>18.0} {:>18.0}",
            rate, plain.throughput, defended.throughput
        );
    }
    println!(
        "\nThe defended server hears about SYN drops from the kernel, then binds\n\
         a listener filtered to the attacker's prefix to a container with numeric\n\
         priority zero: attack SYNs are discarded early at almost no cost, while\n\
         the unmodified server starves in its own SYN queue (paper §5.7)."
    );
}
