//! Prioritized client handling (paper §5.5 / Figure 11): a premium client
//! keeps sub-millisecond response times while a mob of standard clients
//! saturates the server — but only on the resource-container kernel.
//!
//! ```sh
//! cargo run --release --example prioritized_server
//! ```

use resource_containers::prelude::*;

fn main() {
    let low_clients = 24;
    println!("one premium client vs {low_clients} standard clients saturating the server\n");
    println!(
        "{:<26} {:>14} {:>14} {:>16}",
        "system", "T_premium (ms)", "p95 (ms)", "mob throughput"
    );
    for system in [
        Fig11System::Unmodified,
        Fig11System::RcSelect,
        Fig11System::RcEventApi,
    ] {
        let r = run_fig11(Fig11Params {
            system,
            low_clients,
            secs: 5,
        });
        println!(
            "{:<26} {:>14.3} {:>14.3} {:>13.0}/s",
            system.label(),
            r.t_high_ms,
            r.t_high_p95_ms,
            r.low_throughput
        );
    }
    println!(
        "\nThe unmodified kernel cannot protect the premium client: most of the\n\
         per-request work happens inside the kernel, outside the application's\n\
         control (paper §5.5). Containers + filters prioritize that kernel work;\n\
         the scalable event API removes the residual select() scan cost."
    );
}
