//! Quickstart: boot a resource-container kernel, run a web server under
//! load, and inspect per-activity accounting.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use resource_containers::prelude::*;

use httpsim::stats::shared_stats;

fn main() {
    // 1. Boot the paper's prototype kernel: container-aware multi-level
    //    scheduler + lazy, container-charged network processing.
    let mut kernel = Kernel::new(KernelConfig::resource_containers());

    // 2. Start an event-driven web server (a thttpd-alike) that creates a
    //    resource container per connection, exactly as in paper §4.8.
    let stats = shared_stats();
    let server = EventDrivenServer::new(ServerConfig::default(), stats.clone());
    kernel.spawn_process(
        Box::new(server),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );

    // 3. Put eight closed-loop clients on the wire and run one simulated
    //    second.
    let specs: Vec<ClientSpec> = (0..8)
        .map(|i| ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i as u8), 0))
        .collect();
    let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_secs(1));
    clients.arm(&mut kernel);
    kernel.run(&mut clients, Nanos::from_secs(1));

    // 4. Report.
    let s = stats.borrow();
    let ks = kernel.stats();
    println!("simulated 1 second of a loaded web server");
    println!("  requests served : {}", s.static_served);
    println!(
        "  connections     : {} accepted / {} closed",
        s.accepted, s.closed
    );
    println!(
        "  packets         : {} in / {} out",
        ks.pkts_in, ks.pkts_out
    );
    println!(
        "  CPU             : {:.1}% charged to containers, {:.1}% interrupt, {:.1}% idle",
        ks.charged_cpu.ratio(ks.total()) * 100.0,
        ks.interrupt_cpu.ratio(ks.total()) * 100.0,
        ks.idle_cpu.ratio(ks.total()) * 100.0,
    );
    println!(
        "  containers      : {} created, {} destroyed, {} live",
        kernel.containers.created_count(),
        kernel.containers.destroyed_count(),
        kernel.containers.len(),
    );
    println!(
        "  mean latency    : {:.3} ms",
        clients.metrics.mean_latency_ms(0)
    );
}
