//! The CGI resource sandbox (paper §5.6 / Figures 12–13): capping the
//! total CPU of all CGI processing so static throughput survives.
//!
//! ```sh
//! cargo run --release --example cgi_sandbox
//! ```

use resource_containers::prelude::*;

fn main() {
    let cgi_clients = 4;
    println!("static throughput with {cgi_clients} concurrent CPU-hungry CGI requests\n");
    println!(
        "{:<22} {:>16} {:>14}",
        "system", "static req/s", "CGI CPU share"
    );
    for system in [
        Fig12System::Unmodified,
        Fig12System::Lrp,
        Fig12System::Rc { limit: 0.30 },
        Fig12System::Rc { limit: 0.10 },
    ] {
        let r = run_fig12(Fig12Params {
            system,
            cgi_clients,
            static_clients: 16,
            cgi_cpu: Nanos::from_millis(500),
            secs: 12,
        });
        println!(
            "{:<22} {:>16.0} {:>13.1}%",
            system.label(),
            r.static_throughput,
            r.cgi_cpu_share * 100.0
        );
    }
    println!(
        "\nWithout containers the CGI processes grab a fair (or more than fair)\n\
         share each and static service collapses; a CGI-parent container with a\n\
         CPU limit forms a 'resource sandbox' around all of them (paper §5.6)."
    );
}
