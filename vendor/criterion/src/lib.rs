//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal benchmarking harness with criterion's API shape:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. It warms up briefly, then reports the mean
//! wall-clock time per iteration — no statistics, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures over repeated iterations.
pub struct Bencher {
    iters_hint: u64,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs for a
        // perceptible but short window.
        let start = Instant::now();
        let mut calibration_iters = 0u64;
        while start.elapsed() < Duration::from_millis(20) && calibration_iters < 1_000_000 {
            std::hint::black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = start.elapsed() / calibration_iters.max(1) as u32;
        let target = Duration::from_millis(100);
        let iters = if per_iter.is_zero() {
            self.iters_hint.max(1_000)
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)) as u64
        }
        .clamp(1, 10_000_000)
        .max(self.iters_hint);

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, 10, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size as u64, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size as u64,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters_hint: u64, mut f: F) {
    let mut b = Bencher {
        iters_hint,
        measured: None,
    };
    f(&mut b);
    match b.measured {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!(
                "{id:<50} time: {}   ({iters} iterations)",
                fmt_nanos(per_iter)
            );
        }
        None => println!("{id:<50} (no measurement)"),
    }
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
