//! Case-driving machinery: configuration and the deterministic RNG.

/// Test-run configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; the simulation-heavy properties
        // in this workspace set explicit counts, so the default only
        // covers cheap substrate tests.
        Config { cases: 64 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        self.next_u64() % n
    }
}

/// Runs `case` once per configured case count, each with a deterministic
/// RNG derived from the test name and case index.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: &Config, name: &str, mut case: F) {
    let base = fnv1a(name.as_bytes());
    for i in 0..config.cases {
        let mut rng = TestRng::new(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        case(&mut rng);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}
