//! The [`Strategy`] trait and core combinators.
//!
//! Simplified from real proptest: a strategy directly generates values
//! (no `ValueTree`, no shrinking).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice among several boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}
