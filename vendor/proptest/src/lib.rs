//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible property-testing harness: the
//! [`strategy::Strategy`] trait with `prop_map`/`boxed`, strategies for
//! integer ranges, tuples, `any::<T>()`, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, `prop::sample::select`, and the `proptest!`
//! macro driving a configurable number of random cases per test.
//!
//! Differences from real proptest, deliberately accepted:
//! - **no shrinking** — a failing case panics with the generated inputs
//!   left to the assertion message (`prop_assert!` is `assert!`);
//! - **no persistence** — `.proptest-regressions` files are ignored;
//! - case generation is deterministic per (test name, case index), so
//!   failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The convenient everything-import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced re-exports (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $pat:pat in $strategy:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::strategy::Strategy::generate(&($strategy), $rng);
        $( $crate::__proptest_bind!($rng, $($rest)*); )?
    };
}
