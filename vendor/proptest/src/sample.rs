//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Returns a strategy picking uniformly from `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select(options)
}

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T>(Vec<T>);

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0[rng.below(self.0.len() as u64) as usize].clone()
    }
}
