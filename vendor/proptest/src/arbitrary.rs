//! `any::<T>()` — strategies over a type's full natural domain.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the full-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII; occasionally an arbitrary scalar value.
        if rng.below(8) == 0 {
            char::from_u32((rng.next_u64() % 0x11_0000) as u32).unwrap_or('\u{fffd}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}
