//! Offline stand-in for serde's `#[derive(Serialize)]`.
//!
//! Hand-parses the item's token stream (no `syn`/`quote` available in
//! this offline environment) and emits a `serde::ser::Serialize` impl.
//! Supports what the workspace actually derives on: non-generic structs
//! with named fields, tuple structs, unit structs, and enums whose
//! variants are unit, newtype, tuple, or struct-like.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err("generic types are not supported by the vendored derive".into());
        }
    }

    let body = match kind.as_str() {
        "struct" => expand_struct(&name, tokens.get(i)),
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                expand_enum(&name, g.stream())
            }
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive Serialize for `{other}` items")),
    }?;

    let out = format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
         -> ::std::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    );
    out.parse()
        .map_err(|e| format!("derive emitted bad code: {e:?}"))
}

fn expand_struct(name: &str, body: Option<&TokenTree>) -> Result<String, String> {
    match body {
        // Unit struct (`struct S;`).
        None | Some(TokenTree::Punct(_)) => {
            Ok(format!("__serializer.serialize_unit_struct({name:?})"))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_fields(g.stream())?;
            let mut out = String::new();
            out.push_str("#[allow(unused_imports)] use ::serde::ser::SerializeStruct as _;\n");
            out.push_str(&format!(
                "let mut __st = __serializer.serialize_struct({name:?}, {})?;\n",
                fields.len()
            ));
            for f in &fields {
                out.push_str(&format!("__st.serialize_field({f:?}, &self.{f})?;\n"));
            }
            out.push_str("__st.end()");
            Ok(out)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g.stream());
            if n == 1 {
                return Ok(format!(
                    "__serializer.serialize_newtype_struct({name:?}, &self.0)"
                ));
            }
            let mut out = String::new();
            out.push_str("#[allow(unused_imports)] use ::serde::ser::SerializeTupleStruct as _;\n");
            out.push_str(&format!(
                "let mut __st = __serializer.serialize_tuple_struct({name:?}, {n})?;\n"
            ));
            for idx in 0..n {
                out.push_str(&format!("__st.serialize_field(&self.{idx})?;\n"));
            }
            out.push_str("__st.end()");
            Ok(out)
        }
        other => Err(format!("unsupported struct body: {other:?}")),
    }
}

fn expand_enum(name: &str, body: TokenStream) -> Result<String, String> {
    let mut arms = String::new();
    let mut idx = 0u32;
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes on the variant.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            // Unit variant.
            None => {
                arms.push_str(&unit_arm(name, idx, &variant));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                arms.push_str(&unit_arm(name, idx, &variant));
                i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Discriminant: skip to the comma.
                while !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                    if i >= tokens.len() {
                        break;
                    }
                }
                arms.push_str(&unit_arm(name, idx, &variant));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n == 1 {
                    arms.push_str(&format!(
                        "{name}::{variant}(__f0) => \
                         __serializer.serialize_newtype_variant({name:?}, {idx}, {variant:?}, __f0),\n"
                    ));
                } else {
                    let binds: Vec<String> = (0..n).map(|k| format!("__f{k}")).collect();
                    arms.push_str(&format!(
                        "{name}::{variant}({}) => {{\n\
                         let mut __tv = __serializer.serialize_tuple_variant({name:?}, {idx}, {variant:?}, {n})?;\n",
                        binds.join(", ")
                    ));
                    for b in &binds {
                        arms.push_str(&format!("__tv.serialize_field({b})?;\n"));
                    }
                    arms.push_str("__tv.end()\n},\n");
                }
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream())?;
                arms.push_str(&format!(
                    "{name}::{variant} {{ {} }} => {{\n\
                     let mut __sv = __serializer.serialize_struct_variant({name:?}, {idx}, {variant:?}, {})?;\n",
                    fields.join(", "),
                    fields.len()
                ));
                for f in &fields {
                    arms.push_str(&format!("__sv.serialize_field({f:?}, {f})?;\n"));
                }
                arms.push_str("__sv.end()\n},\n");
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            other => return Err(format!("unsupported variant shape: {other:?}")),
        }
        idx += 1;
    }
    let uses = "#[allow(unused_imports)] use ::serde::ser::SerializeTupleVariant as _;\n\
                #[allow(unused_imports)] use ::serde::ser::SerializeStructVariant as _;\n";
    Ok(format!("{uses}match self {{\n{arms}}}"))
}

fn unit_arm(name: &str, idx: u32, variant: &str) -> String {
    format!(
        "{name}::{variant} => \
         __serializer.serialize_unit_variant({name:?}, {idx}, {variant:?}),\n"
    )
}

/// Extracts field names from a named-fields body, skipping attributes,
/// visibility, and types (commas inside angle brackets don't split).
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut expect_name = true;
    let mut angle_depth = 0i32;
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' && expect_name => {
                tokens.next(); // the [...] group
            }
            TokenTree::Ident(id) if expect_name && id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if expect_name => {
                fields.push(id.to_string());
                expect_name = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                expect_name = true;
            }
            _ => {}
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple body by top-level commas (angle-bracket
/// aware, tolerant of a trailing comma).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in body {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_token {
                    n += 1;
                    saw_token = false;
                }
                continue;
            }
            _ => saw_token = true,
        }
    }
    if saw_token {
        n += 1;
    }
    n
}
