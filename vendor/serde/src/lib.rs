//! Offline stand-in for the serialization half of `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible implementation of the parts it
//! uses: the [`Serialize`] / [`Serializer`] traits (full method set,
//! enough for `rcbench::json`'s hand-rolled JSON serializer), `Serialize`
//! impls for the std types that appear in experiment-result structs, and
//! — behind the `derive` feature — a `#[derive(Serialize)]` proc macro
//! for plain structs and enums.

#![forbid(unsafe_code)]

pub mod ser;

pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;
