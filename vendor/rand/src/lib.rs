//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_range`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external crates it needs as minimal
//! API-compatible implementations. The generator here is xoshiro256++
//! seeded through SplitMix64 — not the ChaCha12 stream of the real
//! `StdRng`, but a high-quality deterministic source, which is all the
//! simulation requires (reproducibility is per-seed self-consistency,
//! not bit-compatibility with another library).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core of every generator: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain (full range for
/// integers, `[0, 1)` for floats, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges samplable to a single uniform value.
pub trait SampleRange<T> {
    /// Draws one value in the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns a uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high-quality bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_range_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_unsigned!(u8, u16, u32, u64, usize);

/// Random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn mean_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
