//! Reproduction of *"Resource Containers: A New Facility for Resource
//! Management in Server Systems"* (Gaurav Banga, Peter Druschel, Jeffrey
//! C. Mogul — OSDI '99) as a deterministic discrete-event simulation in
//! safe Rust.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`rescon`] — **the paper's contribution**: resource containers,
//!   hierarchy, attributes, accounting, bindings, descriptors (§4).
//! - [`sched`] — CPU schedulers over container principals: the baseline
//!   decay-usage scheduler, the prototype's multi-level scheduler
//!   (fixed shares + priorities + CPU limits), and stride/lottery
//!   ablations.
//! - [`simnet`] — the simulated TCP/IP subsystem: sockets, SYN/accept
//!   queues, the filter sockaddr namespace (§4.8), and per-principal LRP
//!   queues (§4.7).
//! - [`simdisk`] — the simulated disk: seek/rotation/transfer service
//!   times charged to containers, FIFO vs container-share I/O scheduling,
//!   and a buffer cache whose residency is charged to container memory
//!   (the §7 extension to "other system resources").
//! - [`simos`] — the simulated monolithic kernel: processes, threads, the
//!   container syscall surface (§4.6), software interrupts, and the cost
//!   model calibrated to §5.3.
//! - [`httpsim`] — the server applications: event-driven (thttpd-style),
//!   thread-pool, pre-forked, CGI workers, the SYN-flood defense.
//! - [`workload`] — clients, attackers, and one driver per experiment in
//!   the evaluation (§5.3–§5.8).
//! - [`rctrace`] — observability: session control for the kernel-wide
//!   structured trace, per-container metrics timelines, and the
//!   Chrome-trace / metrics-dump exporters.
//! - [`simcluster`] — cluster scale-out: a steppable multi-kernel
//!   `World` with inter-node lanes, a WRR frontend, a cross-node share
//!   balancer, and a replica-placement orchestrator.
//! - [`simcore`] — the deterministic discrete-event substrate.
//!
//! # Quickstart
//!
//! ```
//! use resource_containers::prelude::*;
//!
//! // A web server whose CGI work is sandboxed to 30% of the CPU (§5.6).
//! let result = run_fig12(Fig12Params {
//!     system: Fig12System::Rc { limit: 0.30 },
//!     cgi_clients: 2,
//!     static_clients: 8,
//!     cgi_cpu: Nanos::from_millis(100),
//!     secs: 4,
//! });
//! assert!(result.cgi_cpu_share < 0.40);
//! ```

pub use httpsim;
pub use rctrace;
pub use rescon;
pub use sched;
pub use simcluster;
pub use simcore;
pub use simdisk;
pub use simnet;
pub use simos;
pub use workload;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use httpsim::{
        encode_request, ClassSpec, EventApi, EventDrivenServer, FileBacking, PreforkServer,
        ReqKind, ServerConfig, ThreadPoolServer,
    };
    pub use rctrace::{chrome_trace_json, metrics_json, TraceConfig, TraceSession};
    pub use rescon::{Attributes, ContainerTable, SchedPolicy, SchedulerBinding};
    pub use simcluster::{
        Frontend, GlobalShare, Lane, LaneSpec, NodeId, NodeSpec, Orchestrator, OrchestratorConfig,
        TenantRoute, TenantShare, World as ClusterWorld, FRONTEND,
    };
    pub use simcore::Nanos;
    pub use simdisk::{BufferCache, DiskParams, FifoIoSched, ShareIoSched, SimDisk};
    pub use simnet::{CidrFilter, IpAddr, NetDiscipline};
    pub use simos::{
        AppEvent, AppHandler, DiskConfig, DiskSchedKind, Kernel, KernelConfig, ListenSpec,
        NetConfig, NodeYield, QdiscKind, SchedConfig, SchedPolicyKind, SysCtx, SysError, World,
        WorldAction,
    };
    pub use workload::scenarios::{
        run_baseline, run_cluster_tenants, run_disk_tenants, run_fig11, run_fig12, run_fig14,
        run_qos_tenants, run_smp_tenants, run_virtual_servers, BaselineParams,
        ClusterTenantsParams, ClusterTenantsResult, DiskTenantsParams, Fig11Params, Fig11System,
        Fig12Params, Fig12System, Fig14Params, QosTenantsParams, SmpTenantsParams, VsParams,
    };
    pub use workload::{ClientSpec, HttpClients, ScenarioArgs, ScenarioRegistry, SynFlood};
}
