//! Workspace-level integration tests: every crate working together
//! through the facade, at reduced experiment scale.

use resource_containers::prelude::*;

use httpsim::stats::shared_stats;
use simcore::Nanos;

fn tiny_server_run(kernel: KernelConfig, secs: u64) -> (u64, simos::KernelStats) {
    let stats = shared_stats();
    let mut k = Kernel::new(kernel);
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let specs: Vec<ClientSpec> = (0..6)
        .map(|i| ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i as u8), 0))
        .collect();
    let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_secs(secs));
    clients.arm(&mut k);
    k.run(&mut clients, Nanos::from_secs(secs));
    let served = stats.borrow().static_served;
    (served, *k.stats())
}

#[test]
fn all_three_kernels_serve_through_the_facade() {
    for cfg in [
        KernelConfig::unmodified(),
        KernelConfig::lrp(),
        KernelConfig::resource_containers(),
    ] {
        let (served, stats) = tiny_server_run(cfg, 1);
        assert!(served > 500, "served = {served}");
        assert!(stats.pkts_in > 0);
    }
}

#[test]
fn whole_experiment_is_deterministic() {
    let a = run_fig11(Fig11Params {
        system: Fig11System::RcEventApi,
        low_clients: 10,
        secs: 2,
    });
    let b = run_fig11(Fig11Params {
        system: Fig11System::RcEventApi,
        low_clients: 10,
        secs: 2,
    });
    assert_eq!(a.high_completed, b.high_completed);
    assert_eq!(a.t_high_ms.to_bits(), b.t_high_ms.to_bits());
    assert_eq!(a.low_throughput.to_bits(), b.low_throughput.to_bits());
}

#[test]
fn accounting_conserves_under_full_experiment_load() {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(EventDrivenServer::new(ServerConfig::default(), stats)),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let specs: Vec<ClientSpec> = (0..8)
        .map(|i| ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i as u8), 0))
        .collect();
    let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_secs(2));
    clients.arm(&mut k);
    let horizon = Nanos::from_secs(2);
    k.run(&mut clients, horizon);
    let s = k.stats();
    // Conservation: charged + interrupt + overhead + idle ≈ elapsed.
    let total = s.total();
    let drift = total
        .saturating_sub(horizon)
        .max(horizon.saturating_sub(total));
    assert!(drift < Nanos::from_millis(1), "drift {drift}");
    // Table-level conservation: charged CPU equals the container table's
    // aggregate view.
    let table_cpu =
        k.containers.subtree_cpu(k.containers.root()).unwrap() + k.containers.reaped_cpu();
    assert_eq!(table_cpu, s.charged_cpu);
    k.containers.check_invariants();
}

#[test]
fn per_request_container_lifecycle_matches_request_count() {
    // §5.4: the server creates one container per request; all of them die.
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let specs = vec![ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0)];
    let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_secs(1));
    clients.arm(&mut k);
    k.run(&mut clients, Nanos::from_secs(1));
    let served = stats.borrow().static_served;
    assert!(served > 500);
    // created >= served (one per connection) and nearly all destroyed.
    assert!(k.containers.created_count() >= served);
    assert!(k.containers.len() < 16, "live = {}", k.containers.len());
}

#[test]
fn scenario_sweep_point_consistency() {
    // More low-priority load must not make the *unmodified* high-priority
    // latency better (monotone-ish shape of Figure 11's dotted curve).
    let r5 = run_fig11(Fig11Params {
        system: Fig11System::Unmodified,
        low_clients: 5,
        secs: 2,
    });
    let r20 = run_fig11(Fig11Params {
        system: Fig11System::Unmodified,
        low_clients: 20,
        secs: 2,
    });
    assert!(
        r20.t_high_ms > r5.t_high_ms,
        "5 clients: {} ms, 20 clients: {} ms",
        r5.t_high_ms,
        r20.t_high_ms
    );
}

#[test]
fn syn_flood_defense_isolates_attacker_prefix() {
    // 12 s so the measurement window sits past the 5 s expiry of the
    // flood's half-open entries in the default listener's SYN queue.
    let r = run_fig14(Fig14Params {
        defended: true,
        syn_rate: 8_000.0,
        clients: 8,
        secs: 12,
    });
    assert!(r.isolations >= 1, "no isolation happened");
    assert!(r.throughput > 1200.0, "throughput {}", r.throughput);
}

#[test]
fn virtual_server_shares_add_up() {
    let r = run_virtual_servers(VsParams {
        shares: vec![0.6, 0.4],
        clients_per_guest: vec![8, 8],
        cgi_cpu: None,
        secs: 6,
    });
    let sum: f64 = r.measured.iter().sum();
    assert!((sum - 1.0).abs() < 1e-6);
    assert!((r.measured[0] - 0.6).abs() < 0.05, "{:?}", r.measured);
}

#[test]
fn share_io_sched_protects_victim_tenant_from_disk_hog() {
    // §7 extension: with a heavy disk hog next door (24 clients vs the
    // victim's 8, so FIFO hands the victim only a quarter of the
    // request slots), the victim's throughput under the container-share
    // I/O scheduler beats FIFO, and the disk-time split tracks the
    // configured shares.
    let run = |sched| {
        run_disk_tenants(DiskTenantsParams {
            hog_clients: 24,
            secs: 6,
            sched,
            ..DiskTenantsParams::default()
        })
    };
    let fifo = run(DiskSchedKind::Fifo);
    let share = run(DiskSchedKind::Share);
    assert!(
        share.throughputs[1] >= fifo.throughputs[1],
        "share {share:?} vs fifo {fifo:?}"
    );
    for (c, m) in share.configured.iter().zip(&share.disk_fractions) {
        assert!((c - m).abs() < 0.05, "configured {c} vs measured {m}");
    }
}

#[test]
fn disk_time_conserves_under_server_load() {
    // Every nanosecond the disk is busy lands in exactly one container:
    // table-level disk accounting equals the device's busy time.
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig {
                files: FileBacking::Disk { file_base: 0 },
                ..ServerConfig::default()
            },
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let specs: Vec<ClientSpec> = (0..4)
        .map(|i| {
            let mut s = ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i as u8), 0);
            s.doc_cycle = 512;
            s
        })
        .collect();
    let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_secs(2));
    clients.arm(&mut k);
    k.run(&mut clients, Nanos::from_secs(2));
    assert!(stats.borrow().static_served > 20, "no disk-backed requests");
    let table_disk =
        k.containers.subtree_disk(k.containers.root()).unwrap() + k.containers.reaped_disk();
    assert_eq!(table_disk, k.disk.total_busy());
    assert!(!k.disk.total_busy().is_zero());
    k.containers.check_invariants();
}

#[test]
fn thread_pool_and_prefork_work_on_rc_kernel() {
    // The alternative server models of §2 run on the container kernel too.
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers());
    k.spawn_process(
        Box::new(ThreadPoolServer::new(
            80,
            4,
            Nanos::from_micros(47),
            1024,
            true,
            stats.clone(),
        )),
        "mt",
        None,
        Attributes::time_shared(10),
        None,
    );
    let specs: Vec<ClientSpec> = (0..4)
        .map(|i| ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i as u8), 0))
        .collect();
    let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_secs(1));
    clients.arm(&mut k);
    k.run(&mut clients, Nanos::from_secs(1));
    assert!(stats.borrow().static_served > 300);
    k.containers.check_invariants();
}
