//! Cluster-level property tests: a multi-kernel `World` is a pure
//! function of its configuration, and the inter-node wire accounting is
//! a closed double-entry system.
//!
//! These run the full `cluster_tenants` scenario at two-node scale with
//! proptest-varied load, per-request cost, lane latency (the conservative
//! synchronization quantum), and the control loops on or off — so the
//! determinism contract is pinned across the parameter axes the 8-node
//! experiment fixes.

use proptest::prelude::*;
use resource_containers::prelude::*;

/// A compact description of a random two-node cluster workload.
#[derive(Clone, Debug)]
struct ClusterMix {
    clients_per_tenant: usize,
    parse_us: u64,
    lane_latency_us: u64,
    rebalance: bool,
}

fn mix_strategy() -> impl Strategy<Value = ClusterMix> {
    (4usize..10, 500u64..2_500, 100u64..400, any::<bool>()).prop_map(
        |(clients_per_tenant, parse_us, lane_latency_us, rebalance)| ClusterMix {
            clients_per_tenant,
            parse_us,
            lane_latency_us,
            rebalance,
        },
    )
}

fn params(mix: &ClusterMix) -> ClusterTenantsParams {
    ClusterTenantsParams {
        nodes: 2,
        clients_per_tenant: mix.clients_per_tenant,
        parse_cost: Nanos::from_micros(mix.parse_us),
        think: Nanos::ZERO,
        secs: 4,
        measure_secs: 2,
        rebalance: mix.rebalance,
        lane: simcluster::LaneSpec::new(Nanos::from_micros(mix.lane_latency_us), 10_000_000_000),
        ..ClusterTenantsParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Same configuration, same world: the state dump — every node's
    /// kernel counters plus the frontend and lane ledgers — is
    /// byte-identical across runs, whatever the load, lane latency, or
    /// control-loop setting.
    #[test]
    fn two_node_same_config_dumps_byte_identical(mix in mix_strategy()) {
        let a = run_cluster_tenants(params(&mix));
        let b = run_cluster_tenants(params(&mix));
        prop_assert_eq!(a.dump, b.dump, "cluster dump not byte-identical for {:?}", &mix);
        prop_assert_eq!(a.measured, b.measured);
        prop_assert_eq!(a.placements, b.placements);
        prop_assert_eq!(a.sim_events, b.sim_events);
    }

    /// Double-entry wire accounting: every nanosecond an inter-node lane
    /// spent busy is charged to exactly one source node, and the
    /// frontend routed every packet it saw.
    #[test]
    fn two_node_lanes_conserve_wire_time(mix in mix_strategy()) {
        let r = run_cluster_tenants(params(&mix));
        prop_assert!(r.forwarded > 0, "frontend forwarded nothing for {:?}", &mix);
        prop_assert!(r.lane_busy_ns > 0, "lanes never transmitted for {:?}", &mix);
        prop_assert!(
            r.conserved,
            "wire time leaked for {:?}: lanes busy {} ns vs tx charged {} ns",
            &mix, r.lane_busy_ns, r.tx_wire_ns
        );
        prop_assert_eq!(r.lane_busy_ns, r.tx_wire_ns);
        prop_assert_eq!(r.unroutable, 0, "unroutable packets for {:?}", &mix);
        prop_assert!(r.total_throughput > 0.0);
    }
}
