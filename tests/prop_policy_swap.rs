//! Property tests for the `rcpolicy` hot-swap plane: random workloads
//! with random mid-run policy swaps — CPU, disk, and link, at random
//! virtual times — must stay deterministic and keep every conservation
//! law the no-swap kernel guarantees. Accounting lives *below* the
//! policy objects (the container table and device totals), so replacing
//! a policy mid-run must never create, destroy, or re-attribute a
//! nanosecond that was already charged.

use proptest::prelude::*;
use resource_containers::prelude::*;

use httpsim::stats::shared_stats;
use simcore::Nanos;
use simdisk::DiskParams;
use simos::{DiskSchedKind, SchedPolicyKind};

/// A compact description of a random workload.
#[derive(Clone, Debug)]
struct Mix {
    static_clients: u8,
    keepalive_clients: u8,
    think_ms: u16,
}

fn mix_strategy() -> impl Strategy<Value = Mix> {
    (1u8..6, 0u8..4, 0u16..20).prop_map(|(s, ka, think_ms)| Mix {
        static_clients: s,
        keepalive_clients: ka,
        think_ms,
    })
}

/// One mid-run swap: (virtual time in ms, plane selector, policy
/// selector). Planes cycle cpu/disk/link; the policy index picks from
/// that plane's registry.
type SwapSpec = (u64, u8, u8);

fn swaps_strategy() -> impl Strategy<Value = Vec<SwapSpec>> {
    proptest::collection::vec((10u64..390, 0u8..3, 0u8..5), 0..6)
}

const CPU_KINDS: [SchedPolicyKind; 5] = [
    SchedPolicyKind::DecayUsage,
    SchedPolicyKind::MultiLevel,
    SchedPolicyKind::Stride,
    SchedPolicyKind::Lottery(7),
    SchedPolicyKind::Edf,
];
const DISK_KINDS: [DiskSchedKind; 2] = [DiskSchedKind::Fifo, DiskSchedKind::Share];
const LINK_KINDS: [QdiscKind; 2] = [QdiscKind::Fifo, QdiscKind::Wfq];

/// What one swapped run produced, for determinism and conservation
/// checks.
struct SwapRun {
    served: u64,
    swaps_applied: usize,
    /// Per-CPU accounting covers the whole run and sums to the globals.
    cpu_conserved: bool,
    chrome: String,
    metrics: String,
}

/// Runs `mix` on a two-CPU kernel with a disk-backed server and a
/// finite WFQ link, applying `swaps` at their virtual times through the
/// kernel's policy-swap entry points.
fn run_swapped(mix: &Mix, swaps: &[SwapSpec]) -> SwapRun {
    rctrace::start(TraceConfig {
        ring_capacity: 1 << 16,
        sample_interval: Nanos::from_millis(10),
        spans: false,
    });
    let stats = shared_stats();
    let mut k = Kernel::new(
        KernelConfig::resource_containers()
            .with_ncpus(2)
            .with_disk(DiskParams::default())
            .with_link(40_000_000, QdiscKind::Wfq),
    );
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig {
                files: httpsim::FileBacking::Disk { file_base: 0 },
                ..ServerConfig::default()
            },
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut specs = Vec::new();
    for i in 0..mix.static_clients {
        let mut s = ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i), 0);
        s.think = Nanos::from_millis(mix.think_ms as u64);
        s.doc = i as u32 * 19;
        specs.push(s);
    }
    for i in 0..mix.keepalive_clients {
        specs.push(
            ClientSpec::staticloop(IpAddr::new(10, 0, 1, 1 + i), 1)
                .with_kind(ReqKind::StaticKeepAlive),
        );
    }
    let end = Nanos::from_millis(400);
    let mut clients = HttpClients::new(specs, Nanos::ZERO, end);
    clients.arm(&mut k);

    let mut schedule: Vec<SwapSpec> = swaps.to_vec();
    schedule.sort();
    let mut applied = 0;
    for &(at_ms, plane, kind) in &schedule {
        k.run(&mut clients, Nanos::from_millis(at_ms));
        match plane % 3 {
            0 => {
                k.set_cpu_policy(CPU_KINDS[kind as usize % CPU_KINDS.len()]);
            }
            1 => {
                k.set_disk_policy(DISK_KINDS[kind as usize % DISK_KINDS.len()]);
            }
            _ => {
                k.set_link_policy(LINK_KINDS[kind as usize % LINK_KINDS.len()]);
            }
        }
        applied += 1;
    }
    k.run(&mut clients, end);

    let per_cpu = k.per_cpu_stats();
    let elapsed = k.clock();
    let sum = |f: fn(&simos::CpuStats) -> Nanos| -> Nanos { per_cpu.iter().map(f).sum() };
    let g = k.stats();
    let cpu_conserved = per_cpu.iter().all(|c| c.total() == elapsed)
        && sum(|c| c.charged_cpu) == g.charged_cpu
        && sum(|c| c.interrupt_cpu) == g.interrupt_cpu
        && sum(|c| c.overhead_cpu) == g.overhead_cpu
        && sum(|c| c.idle_cpu) == g.idle_cpu;
    let session = rctrace::finish().expect("trace session active");
    let served = stats.borrow().static_served;
    SwapRun {
        served,
        swaps_applied: applied,
        cpu_conserved,
        chrome: chrome_trace_json(&session),
        metrics: metrics_json(&session),
    }
}

/// Pulls the device conservation terms back out of the rendered metrics
/// dump (the same numbers `rctrace` exported, so a violation here is a
/// violation an operator would see).
fn conservation_from_metrics(metrics: &str) -> (bool, bool) {
    let v = rcbench_parse(metrics);
    let num = |path: &[&str]| -> f64 {
        let mut cur = &v;
        for p in path {
            cur = cur.get(p).unwrap_or(&rcbench::json::Value::Null);
        }
        cur.as_f64().unwrap_or(0.0)
    };
    let disk_ok = num(&["globals", "disk_busy_ns"])
        == num(&["globals", "root_subtree_disk_ns"])
            + num(&["globals", "floating_disk_ns"])
            + num(&["globals", "reaped_disk_ns"]);
    let tx_ok = num(&["link", "busy_ns"])
        == num(&["link", "root_subtree_tx_ns"])
            + num(&["link", "floating_tx_ns"])
            + num(&["link", "reaped_tx_ns"]);
    (disk_ok, tx_ok)
}

fn rcbench_parse(metrics: &str) -> rcbench::json::Value {
    rcbench::json::parse(metrics).expect("metrics dump is valid JSON")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hot-swapping any scheduler on any plane at any virtual time is
    /// part of the determinism contract: same mix + same swap schedule,
    /// byte-identical artifacts — and CPU, disk, and link accounting
    /// all stay conserved across the swaps.
    #[test]
    fn swapped_runs_are_deterministic_and_conserved(
        mix in mix_strategy(),
        swaps in swaps_strategy(),
    ) {
        let a = run_swapped(&mix, &swaps);
        let b = run_swapped(&mix, &swaps);
        prop_assert_eq!(a.swaps_applied, swaps.len());
        prop_assert!(a.served > 0, "no requests served for {mix:?}");
        prop_assert!(a.cpu_conserved, "per-CPU accounting not conserved for {mix:?} {swaps:?}");
        prop_assert!(b.cpu_conserved);
        let (disk_ok, tx_ok) = conservation_from_metrics(&a.metrics);
        prop_assert!(disk_ok, "disk time not conserved for {mix:?} {swaps:?}");
        prop_assert!(tx_ok, "wire time not conserved for {mix:?} {swaps:?}");
        prop_assert_eq!(a.served, b.served);
        prop_assert_eq!(a.chrome, b.chrome, "swapped chrome trace not byte-identical");
        prop_assert_eq!(a.metrics, b.metrics, "swapped metrics dump not byte-identical");
    }

    /// A swap schedule that re-attaches the *currently running* kind on
    /// every plane is still a real swap (fresh policy state attaches via
    /// export/import), and the workload must not notice: requests are
    /// served and every ledger still balances.
    #[test]
    fn identity_swaps_preserve_service_and_conservation(
        mix in mix_strategy(),
        at_ms in 50u64..350,
    ) {
        // The boot policies of a resource-containers kernel.
        let swaps = vec![(at_ms, 0u8, 0u8), (at_ms, 1u8, 1u8), (at_ms, 2u8, 1u8)];
        let r = run_swapped(&mix, &swaps);
        prop_assert_eq!(r.swaps_applied, 3);
        prop_assert!(r.served > 0, "identity swaps starved the workload for {mix:?}");
        prop_assert!(r.cpu_conserved);
        let (disk_ok, tx_ok) = conservation_from_metrics(&r.metrics);
        prop_assert!(disk_ok && tx_ok, "identity swaps broke device conservation");
    }
}

/// The gated metrics section: a run with at least one swap carries a
/// `policy` section recording it; the swaps array matches what was
/// applied, in order.
#[test]
fn swap_runs_export_policy_section() {
    let mix = Mix {
        static_clients: 4,
        keepalive_clients: 1,
        think_ms: 0,
    };
    let plain = run_swapped(&mix, &[]);
    assert!(
        !plain.metrics.contains("\"policy\":"),
        "no-swap run must not grow a policy section"
    );
    let swapped = run_swapped(&mix, &[(100, 0, 4), (200, 2, 0)]);
    let v = rcbench_parse(&swapped.metrics);
    let swaps = v
        .get("policy")
        .and_then(|p| p.get("swaps"))
        .and_then(|s| s.as_array())
        .expect("policy.swaps array present");
    assert_eq!(swaps.len(), 2);
    assert_eq!(swaps[0].get("to").and_then(|v| v.as_str()), Some("edf"));
    assert_eq!(swaps[1].get("plane").and_then(|v| v.as_str()), Some("link"));
    let epochs = v
        .get("policy")
        .and_then(|p| p.get("epochs"))
        .and_then(|e| e.as_array())
        .expect("policy.epochs array present");
    assert_eq!(
        epochs.len(),
        3,
        "two swaps partition the run into three epochs"
    );
}
