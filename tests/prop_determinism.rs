//! Property tests at workspace level: arbitrary client mixes must run
//! deterministically and keep kernel accounting conserved.

use proptest::prelude::*;
use resource_containers::prelude::*;

use httpsim::stats::shared_stats;
use simcore::fault::FaultPlan;
use simcore::span::SpanBuffer;
use simcore::Nanos;

/// A compact description of a random workload.
#[derive(Clone, Debug)]
struct Mix {
    static_clients: u8,
    keepalive_clients: u8,
    think_ms: u16,
    kernel: u8,
}

fn mix_strategy() -> impl Strategy<Value = Mix> {
    (1u8..6, 0u8..4, 0u16..20, 0u8..3).prop_map(|(s, ka, think_ms, kernel)| Mix {
        static_clients: s,
        keepalive_clients: ka,
        think_ms,
        kernel,
    })
}

fn run_mix(mix: &Mix) -> (u64, u64, Nanos) {
    let kernel = match mix.kernel {
        0 => KernelConfig::unmodified(),
        1 => KernelConfig::lrp(),
        _ => KernelConfig::resource_containers(),
    };
    let stats = shared_stats();
    let mut k = Kernel::new(kernel);
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut specs = Vec::new();
    for i in 0..mix.static_clients {
        let mut s = ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i), 0);
        s.think = Nanos::from_millis(mix.think_ms as u64);
        specs.push(s);
    }
    for i in 0..mix.keepalive_clients {
        specs.push(
            ClientSpec::staticloop(IpAddr::new(10, 0, 1, 1 + i), 1)
                .with_kind(ReqKind::StaticKeepAlive),
        );
    }
    let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_millis(400));
    clients.arm(&mut k);
    k.run(&mut clients, Nanos::from_millis(400));
    let served = stats.borrow().static_served;
    (served, k.stats().pkts_in, k.stats().charged_cpu)
}

/// `run_mix` with tracing on; returns the same result tuple plus both
/// rendered observability artifacts.
fn run_mix_traced(mix: &Mix) -> ((u64, u64, Nanos), String, String) {
    rctrace::start(TraceConfig {
        ring_capacity: 1 << 16,
        sample_interval: Nanos::from_millis(10),
        spans: false,
    });
    let result = run_mix(mix);
    let session = rctrace::finish().expect("trace session active");
    (result, chrome_trace_json(&session), metrics_json(&session))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The simulation is a pure function of its configuration.
    #[test]
    fn identical_runs_identical_results(mix in mix_strategy()) {
        let a = run_mix(&mix);
        let b = run_mix(&mix);
        prop_assert_eq!(a, b);
    }

    /// Whatever the mix, the kernel serves and accounting stays sane.
    #[test]
    fn any_mix_serves_and_accounts(mix in mix_strategy()) {
        let (served, pkts, charged) = run_mix(&mix);
        prop_assert!(served > 0, "no requests served for {mix:?}");
        prop_assert!(pkts > 0);
        prop_assert!(charged > Nanos::ZERO);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The exporters are pure too: same seed, byte-identical artifacts —
    /// and tracing observes the run without perturbing it.
    #[test]
    fn traced_runs_are_deterministic_and_unperturbed(mix in mix_strategy()) {
        let untraced = run_mix(&mix);
        let (a, chrome_a, metrics_a) = run_mix_traced(&mix);
        let (b, chrome_b, metrics_b) = run_mix_traced(&mix);
        prop_assert_eq!(a, untraced, "tracing changed the simulation for {:?}", mix);
        prop_assert_eq!(a, b);
        prop_assert_eq!(chrome_a, chrome_b, "chrome trace not byte-identical");
        prop_assert_eq!(metrics_a, metrics_b, "metrics dump not byte-identical");
    }
}

/// An aggressive all-category fault plan for determinism tests (client
/// faults ride on the same plan via the workload's injector).
fn fault_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_packet_faults(0.01, 0.005, 0.02, Nanos::from_micros(100))
        .with_client_faults(0.01, 0.01, 0.02, Nanos::from_micros(100))
        .with_window(Nanos::from_millis(100), Nanos::from_millis(200), 4.0)
}

/// One traced, faulted run of `mix` with fault seed `seed`.
struct FaultRun {
    served: u64,
    /// Faults injected by kernel + workload.
    injected: u64,
    chrome: String,
    /// Per-CPU accounting conservation: on every CPU, charged +
    /// interrupt + overhead + idle covers the whole run, and the
    /// per-CPU buckets sum to the global ones.
    conserved: bool,
    /// Wire time spent by the finite link (zero when no link is
    /// configured).
    link_busy: Nanos,
    /// Transmit conservation from the metrics globals: every charged
    /// wire nanosecond is in exactly one subtree (root, floating, or
    /// reaped).
    tx_conserved: bool,
    /// Drained request-span ledgers (`None` unless spans were on).
    spans: Option<SpanBuffer>,
}

/// `link = true` puts a finite 40 Mbit/s WFQ link on the transmit path,
/// so every faulted run also exercises wire-time charging, send
/// backpressure, and link-queue drops under packet loss + SMP.
/// `spans = true` additionally records per-request causal spans.
fn run_fault_mix(mix: &Mix, seed: u64, link: bool, spans: bool) -> FaultRun {
    rctrace::start(TraceConfig {
        ring_capacity: 1 << 16,
        sample_interval: Nanos::from_millis(10),
        spans,
    });
    let mut kernel = match mix.kernel {
        0 => KernelConfig::unmodified(),
        1 => KernelConfig::lrp(),
        _ => KernelConfig::resource_containers(),
    }
    .with_ncpus(2)
    .with_fault(fault_plan(seed))
    .with_admission(32, 0);
    if link {
        kernel = kernel.with_link(40_000_000, QdiscKind::Wfq);
    }
    let stats = shared_stats();
    let mut k = Kernel::new(kernel);
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut specs = Vec::new();
    for i in 0..mix.static_clients {
        let mut s = ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i), 0)
            .with_timeout(Nanos::from_millis(40))
            .with_backoff(Nanos::from_millis(2));
        s.think = Nanos::from_millis(mix.think_ms as u64);
        specs.push(s);
    }
    for i in 0..mix.keepalive_clients {
        specs.push(
            ClientSpec::staticloop(IpAddr::new(10, 0, 1, 1 + i), 1)
                .with_kind(ReqKind::StaticKeepAlive)
                .with_timeout(Nanos::from_millis(40))
                .with_backoff(Nanos::from_millis(2)),
        );
    }
    let mut clients = HttpClients::new(specs, Nanos::ZERO, Nanos::from_millis(400))
        .with_faults(&fault_plan(seed));
    clients.arm(&mut k);
    k.run(&mut clients, Nanos::from_millis(400));

    let per_cpu = k.per_cpu_stats();
    let elapsed = k.clock();
    let sum = |f: fn(&simos::CpuStats) -> Nanos| -> Nanos { per_cpu.iter().map(f).sum() };
    let g = k.stats();
    let conserved = per_cpu.iter().all(|c| c.total() == elapsed)
        && sum(|c| c.charged_cpu) == g.charged_cpu
        && sum(|c| c.interrupt_cpu) == g.interrupt_cpu
        && sum(|c| c.overhead_cpu) == g.overhead_cpu
        && sum(|c| c.idle_cpu) == g.idle_cpu;
    let injected = k.fault_counts().total() + clients.fault_counts().total();
    let session = rctrace::finish().expect("trace session active");
    let served = stats.borrow().static_served;
    let g = &session.metrics.globals;
    let tx_conserved = g.root_subtree_tx + g.floating_tx + g.reaped_tx == g.link_busy;
    FaultRun {
        served,
        injected,
        chrome: chrome_trace_json(&session),
        conserved,
        link_busy: g.link_busy,
        tx_conserved,
        spans: session.spans.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fault injection is part of the determinism contract: same seed
    /// and plan, byte-identical Chrome export — and accounting stays
    /// conserved per CPU with faults flying.
    #[test]
    fn faulted_runs_are_deterministic(mix in mix_strategy()) {
        let a = run_fault_mix(&mix, 41, false, false);
        let b = run_fault_mix(&mix, 41, false, false);
        prop_assert!(a.injected > 0, "plan injected nothing for {mix:?}");
        prop_assert!(a.conserved, "per-CPU accounting not conserved for {mix:?}");
        prop_assert_eq!(a.served, b.served);
        prop_assert_eq!(a.injected, b.injected);
        prop_assert_eq!(a.chrome, b.chrome, "faulted chrome trace not byte-identical");
    }

    /// With a finite WFQ link on the transmit path, faulted SMP runs
    /// stay deterministic and *transmit* accounting is conserved too:
    /// every wire nanosecond the link spent is charged to exactly one
    /// container subtree, with packet faults flying.
    #[test]
    fn linked_faulted_runs_conserve_tx(mix in mix_strategy()) {
        let a = run_fault_mix(&mix, 43, true, false);
        let b = run_fault_mix(&mix, 43, true, false);
        prop_assert!(a.link_busy > Nanos::ZERO, "link never transmitted for {mix:?}");
        prop_assert!(a.tx_conserved, "tx accounting not conserved for {mix:?}");
        prop_assert!(b.tx_conserved);
        prop_assert!(a.conserved, "per-CPU accounting not conserved for {mix:?}");
        prop_assert_eq!(a.served, b.served);
        prop_assert_eq!(a.injected, b.injected);
        prop_assert_eq!(a.chrome, b.chrome, "linked faulted chrome trace not byte-identical");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// rcspan's two structural invariants survive the worst conditions
    /// the simulator can compose — faults flying, two CPUs, a finite
    /// WFQ link: every span minted is closed by the time the session
    /// drains, and every ledger's phase durations sum *exactly* to its
    /// end-to-end latency in integer nanoseconds. Recording spans must
    /// also leave the simulation itself untouched.
    #[test]
    fn spans_close_and_conserve_under_faults(mix in mix_strategy()) {
        let plain = run_fault_mix(&mix, 47, true, false);
        let spanned = run_fault_mix(&mix, 47, true, true);
        prop_assert_eq!(
            spanned.served, plain.served,
            "span recording perturbed the run for {:?}", &mix
        );
        prop_assert_eq!(spanned.injected, plain.injected);
        prop_assert!(spanned.conserved);

        let buf = spanned.spans.expect("span session was on");
        prop_assert!(buf.minted > 0, "no spans minted for {:?}", &mix);
        prop_assert_eq!(
            buf.minted, buf.finished,
            "a minted span never closed for {:?}", &mix
        );
        prop_assert_eq!(buf.dropped, 0, "retention cap hit in a mini run");
        for l in &buf.ledgers {
            prop_assert!(l.end >= l.start, "span {} runs backwards", l.request);
            prop_assert_eq!(
                l.total(), l.end - l.start,
                "span {} leaks time: phases sum to {:?}, e2e {:?}",
                l.request, l.total(), l.end - l.start
            );
        }
    }
}

/// Runs `clients` static clients against a linked kernel whose server
/// container carries `sockbuf_limit = limit`, sampling the container's
/// unsent-byte backlog at eight staged points during the run. Returns
/// `(served, backlog_ok)` where `backlog_ok` means the reservation
/// never exceeded the limit at any observation point.
fn run_sockbuf_mix(limit: u64, clients: u8, response_kib: u64) -> (u64, bool) {
    let stats = shared_stats();
    let mut k =
        Kernel::new(KernelConfig::resource_containers().with_link(20_000_000, QdiscKind::Wfq));
    let pid = k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig {
                response_bytes: response_kib * 1024,
                // Connections share the process-default container, so
                // the limit under test is the one charged at the link.
                container_per_connection: false,
                ..ServerConfig::default()
            },
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10).with_sockbuf_limit(limit),
        None,
    );
    let principal = k.process_container(pid).expect("server process exists");
    let specs: Vec<ClientSpec> = (0..clients)
        .map(|i| ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i), 0))
        .collect();
    let end = Nanos::from_millis(400);
    let mut world = HttpClients::new(specs, Nanos::ZERO, end);
    world.arm(&mut k);
    let mut ok = true;
    for slice in 1..=8u64 {
        k.run(&mut world, end * slice / 8);
        ok &= k.tx_backlog_of(principal) <= limit;
    }
    let served = stats.borrow().static_served;
    (served, ok)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// §4.4 as an invariant: whatever the limit, client count, and
    /// response size, the unsent bytes reserved against the container
    /// never exceed its `sockbuf_limit` — backpressure queues the
    /// excess in the application, not the kernel — and the server still
    /// makes progress through the partial-send path.
    #[test]
    fn sockbuf_limit_bounds_tx_backlog(
        limit_kib in 2u64..64,
        clients in 1u8..5,
        response_kib in 1u64..32,
    ) {
        let (served, ok) = run_sockbuf_mix(limit_kib * 1024, clients, response_kib);
        prop_assert!(ok, "tx backlog exceeded sockbuf_limit ({limit_kib} KiB)");
        prop_assert!(served > 0, "no requests served under backpressure");
    }
}

/// Changing only the fault seed changes the injections but never breaks
/// conservation: time charged on every CPU still adds up exactly.
#[test]
fn different_fault_seed_different_injections_same_conservation() {
    let mix = Mix {
        static_clients: 4,
        keepalive_clients: 2,
        think_ms: 0,
        kernel: 2,
    };
    let a = run_fault_mix(&mix, 1, false, false);
    let b = run_fault_mix(&mix, 2, false, false);
    assert!(a.injected > 0 && b.injected > 0);
    assert!(
        a.chrome != b.chrome,
        "seeds 1 and 2 produced identical traces"
    );
    assert!(a.conserved && b.conserved);
}
