//! SMP kernel invariants at workspace level: per-CPU time conservation
//! under arbitrary workloads and CPU counts, and exact single-CPU
//! equivalence with the pre-SMP golden artifacts.

use proptest::prelude::*;
use resource_containers::prelude::*;

use httpsim::stats::shared_stats;
use simcore::Nanos;

const END_MS: u64 = 400;

/// A compact description of a random workload on a random machine size.
#[derive(Clone, Debug)]
struct SmpMix {
    ncpus: u32,
    static_clients: u8,
    keepalive_clients: u8,
    think_ms: u16,
}

fn smp_mix_strategy() -> impl Strategy<Value = SmpMix> {
    (1u32..=4, 1u8..6, 0u8..4, 0u16..20).prop_map(|(ncpus, s, ka, think_ms)| SmpMix {
        ncpus,
        static_clients: s,
        keepalive_clients: ka,
        think_ms,
    })
}

fn run_smp_mix(mix: &SmpMix) -> simos::Kernel {
    let stats = shared_stats();
    let mut k = Kernel::new(KernelConfig::resource_containers().with_ncpus(mix.ncpus));
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let mut specs = Vec::new();
    for i in 0..mix.static_clients {
        let mut s = ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1 + i), 0);
        s.think = Nanos::from_millis(mix.think_ms as u64);
        specs.push(s);
    }
    for i in 0..mix.keepalive_clients {
        specs.push(
            ClientSpec::staticloop(IpAddr::new(10, 0, 1, 1 + i), 1)
                .with_kind(ReqKind::StaticKeepAlive),
        );
    }
    let end = Nanos::from_millis(END_MS);
    let mut clients = HttpClients::new(specs, Nanos::ZERO, end);
    clients.arm(&mut k);
    k.run(&mut clients, end);
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every simulated CPU accounts for every nanosecond of the run:
    /// per CPU, `charged + interrupt + overhead + idle` equals the
    /// wall-clock, so the machine-wide sum is `ncpus × wall-clock` — no
    /// time is lost or double-counted by the frontier loop, migrations,
    /// or idle stealing.
    #[test]
    fn per_cpu_time_is_conserved(mix in smp_mix_strategy()) {
        let k = run_smp_mix(&mix);
        let end = Nanos::from_millis(END_MS);
        let per_cpu = k.per_cpu_stats();
        prop_assert_eq!(per_cpu.len(), mix.ncpus as usize);
        let mut machine_total = Nanos::ZERO;
        for (i, c) in per_cpu.iter().enumerate() {
            prop_assert_eq!(
                c.total(), end,
                "CPU {} accounts {:?} of a {:?} run ({:?})", i, c.total(), end, c
            );
            machine_total += c.total();
        }
        prop_assert_eq!(machine_total, end * mix.ncpus as u64);
        // The per-CPU breakdown sums to the kernel-wide aggregates.
        let g = k.stats();
        let sum = |f: fn(&simos::CpuStats) -> Nanos| -> Nanos {
            per_cpu.iter().map(f).sum()
        };
        prop_assert_eq!(sum(|c| c.charged_cpu), g.charged_cpu);
        prop_assert_eq!(sum(|c| c.interrupt_cpu), g.interrupt_cpu);
        prop_assert_eq!(sum(|c| c.overhead_cpu), g.overhead_cpu);
        prop_assert_eq!(sum(|c| c.idle_cpu), g.idle_cpu);
        prop_assert_eq!(per_cpu.iter().map(|c| c.ctx_switches).sum::<u64>(), g.ctx_switches);
    }

    /// A multiprocessor run is a pure function of its configuration,
    /// exactly like the uniprocessor one.
    #[test]
    fn smp_runs_are_deterministic(mix in smp_mix_strategy()) {
        let a = run_smp_mix(&mix);
        let b = run_smp_mix(&mix);
        let key = |k: &simos::Kernel| {
            let s = k.stats();
            (s.charged_cpu, s.idle_cpu, s.pkts_in, s.pkts_out, s.ctx_switches, s.migrations)
        };
        prop_assert_eq!(key(&a), key(&b));
        prop_assert_eq!(a.per_cpu_stats(), b.per_cpu_stats());
    }
}

/// The trace-export mini fixture from `tests/trace_export.rs`, with the
/// CPU count made explicit.
fn mini_run_ncpus(ncpus: u32) -> simos::Kernel {
    rctrace::start(TraceConfig {
        ring_capacity: 1 << 16,
        sample_interval: Nanos::from_millis(2),
        spans: false,
    });
    let stats = shared_stats();
    let mut k = simos::Kernel::new(KernelConfig::resource_containers().with_ncpus(ncpus));
    k.spawn_process(
        Box::new(EventDrivenServer::new(ServerConfig::default(), stats)),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let specs = vec![
        ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0),
        ClientSpec::staticloop(IpAddr::new(10, 0, 0, 2), 0).with_kind(ReqKind::StaticKeepAlive),
    ];
    let end = Nanos::from_millis(10);
    let mut clients = HttpClients::new(specs, Nanos::ZERO, end);
    clients.arm(&mut k);
    k.run(&mut clients, end);
    k
}

/// An explicit `ncpus = 1` kernel reproduces the pre-SMP golden metrics
/// dump byte for byte: the SMP refactor is invisible on a uniprocessor.
#[test]
fn ncpus_1_matches_single_cpu_golden() {
    let _k = mini_run_ncpus(1);
    let session = rctrace::finish().expect("active session");
    let dump = metrics_json(&session);
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_mini_metrics.json"
    ))
    .expect("golden file (created by tests/trace_export.rs with BLESS=1)");
    assert_eq!(
        dump, golden,
        "explicit ncpus=1 diverged from the single-CPU golden dump"
    );
}

/// The same fixture on a 4-CPU machine stays deterministic and grows
/// per-CPU tracks in the Chrome export, without touching the golden.
#[test]
fn ncpus_4_mini_run_exports_per_cpu_tracks() {
    let k = mini_run_ncpus(4);
    let session = rctrace::finish().expect("active session");
    assert_eq!(k.ncpus(), 4);
    let chrome = chrome_trace_json(&session);
    for cpu in 0..4 {
        assert!(
            chrome.contains(&format!("\"name\":\"cpu{cpu}\"")),
            "missing per-CPU track cpu{cpu}"
        );
    }
    let metrics = metrics_json(&session);
    assert!(
        metrics.contains("\"cpus\""),
        "multiprocessor metrics dump must carry the per-CPU section"
    );
}
