//! Exporter tests: byte-determinism of both artifacts, a golden metrics
//! dump, tracing-overhead invariance, and exact conservation between the
//! metrics dump and the kernel's own accounting.

use httpsim::stats::shared_stats;
use resource_containers::prelude::*;
use simcore::Nanos;

fn mini_end() -> Nanos {
    Nanos::from_millis(10)
}

/// A tiny fixed workload: one closed-loop static client and one
/// keep-alive client against the containers kernel, 10 ms of virtual
/// time. Small enough for a golden file, busy enough to exercise every
/// event source (sched, net, syscalls, per-connection containers).
fn mini_run(trace: bool) -> (simos::Kernel, u64) {
    mini_run_on(KernelConfig::resource_containers(), trace)
}

fn mini_run_on(cfg: KernelConfig, trace: bool) -> (simos::Kernel, u64) {
    mini_run_cfg(
        cfg,
        trace.then_some(TraceConfig {
            ring_capacity: 1 << 16,
            sample_interval: Nanos::from_millis(2),
            spans: false,
        }),
    )
}

fn mini_run_cfg(cfg: KernelConfig, trace: Option<TraceConfig>) -> (simos::Kernel, u64) {
    if let Some(tc) = trace {
        rctrace::start(tc);
    }
    let stats = shared_stats();
    let mut k = simos::Kernel::new(cfg);
    k.spawn_process(
        Box::new(EventDrivenServer::new(
            ServerConfig::default(),
            stats.clone(),
        )),
        "httpd",
        None,
        Attributes::time_shared(10),
        None,
    );
    let specs = vec![
        ClientSpec::staticloop(IpAddr::new(10, 0, 0, 1), 0),
        ClientSpec::staticloop(IpAddr::new(10, 0, 0, 2), 0).with_kind(ReqKind::StaticKeepAlive),
    ];
    let mut clients = HttpClients::new(specs, Nanos::ZERO, mini_end());
    clients.arm(&mut k);
    k.run(&mut clients, mini_end());
    let served = stats.borrow().static_served;
    (k, served)
}

fn mini_session() -> (simos::Kernel, u64, TraceSession) {
    let (k, served) = mini_run(true);
    let session = rctrace::finish().expect("active session");
    (k, served, session)
}

#[test]
fn exports_are_byte_identical_across_runs() {
    let (_, served_a, sa) = mini_session();
    let (_, served_b, sb) = mini_session();
    assert_eq!(served_a, served_b);
    assert_eq!(chrome_trace_json(&sa), chrome_trace_json(&sb));
    assert_eq!(metrics_json(&sa), metrics_json(&sb));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let (k_off, served_off) = mini_run(false);
    let (k_on, served_on, _session) = mini_session();
    assert_eq!(served_off, served_on);
    let (a, b) = (k_off.stats(), k_on.stats());
    assert_eq!(a.charged_cpu, b.charged_cpu);
    assert_eq!(a.interrupt_cpu, b.interrupt_cpu);
    assert_eq!(a.idle_cpu, b.idle_cpu);
    assert_eq!(a.pkts_in, b.pkts_in);
    assert_eq!(a.pkts_out, b.pkts_out);
    assert_eq!(a.ctx_switches, b.ctx_switches);
}

#[test]
fn metrics_totals_equal_kernel_accounting() {
    let (k, _, session) = mini_session();
    // Per-container totals are copied verbatim from the table.
    for (id, c) in k.containers.iter() {
        let series = session
            .metrics
            .containers
            .get(&id.as_u64())
            .unwrap_or_else(|| panic!("container {id:?} missing from metrics"));
        assert_eq!(series.totals.usage, *c.usage(), "usage mismatch for {id:?}");
        assert_eq!(
            series.totals.subtree_cpu,
            k.containers.subtree_cpu(id).unwrap()
        );
        assert_eq!(
            series.totals.subtree_disk,
            k.containers.subtree_disk(id).unwrap()
        );
    }
    // Conservation: every charged nanosecond is in exactly one subtree.
    let g = &session.metrics.globals;
    assert_eq!(
        g.root_subtree_cpu + g.floating_cpu + g.reaped_cpu,
        g.charged_cpu,
        "CPU conservation violated"
    );
    assert_eq!(g.charged_cpu, k.stats().charged_cpu);
    assert_eq!(
        g.root_subtree_disk + g.floating_disk + g.reaped_disk,
        g.disk_busy,
        "disk conservation violated"
    );
    assert_eq!(g.disk_busy, k.disk.total_busy());
}

#[test]
fn chrome_trace_has_expected_tracks() {
    let (k, _, session) = mini_session();
    let chrome = chrome_trace_json(&session);
    // One named track per live container, plus the cpu and disk tracks.
    assert!(chrome.contains("\"name\":\"cpu\""));
    assert!(chrome.contains("\"name\":\"disk\""));
    for (id, c) in k.containers.iter() {
        let label = match &c.attrs().name {
            Some(n) => format!("container {n}"),
            None => format!("container c{}", id.as_u64()),
        };
        assert!(chrome.contains(&label), "missing track {label:?}");
    }
    // Charge counters ride as counter tracks.
    for counter in [
        "cpu_charge_ms",
        "disk_charge_ms",
        "runnable",
        "syn_queue",
        "cache_bytes",
    ] {
        assert!(chrome.contains(counter), "missing counter {counter}");
    }
    // Real work happened: CPU slices and context switches are present.
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(session.trace.emitted > 0);
    assert_eq!(session.trace.dropped, 0);
}

/// The same mini workload over a finite 40 Mbit/s WFQ link: the link
/// track and per-container transmit counters appear in the Chrome
/// export, the metrics dump grows a link section, and transmit wire
/// time is conserved exactly against the kernel's own link accounting —
/// while the linkless golden below stays byte-identical.
#[test]
fn linked_run_exports_link_track_and_conserves_tx() {
    let (k, served) = mini_run_on(
        KernelConfig::resource_containers().with_link(40_000_000, QdiscKind::Wfq),
        true,
    );
    let session = rctrace::finish().expect("active session");
    assert!(served > 0);

    let g = &session.metrics.globals;
    assert!(g.link_configured);
    assert!(g.link_busy > Nanos::ZERO, "link never transmitted");
    assert_eq!(
        g.root_subtree_tx + g.floating_tx + g.reaped_tx,
        g.link_busy,
        "tx conservation violated"
    );
    let (busy, bytes, pkts) = k.link_totals();
    assert_eq!(g.link_busy, busy);
    assert_eq!(g.link_bytes, bytes);
    assert_eq!(g.link_pkts, pkts);

    let chrome = chrome_trace_json(&session);
    assert!(chrome.contains("\"name\":\"link\""), "link track missing");
    assert!(chrome.contains("tx_charge_ms"), "tx counter track missing");
    let metrics = metrics_json(&session);
    assert!(metrics.contains("\"link\""), "metrics link section missing");
}

/// The same mini workload on a memory-configured kernel: the metrics
/// dump grows a mem section, per-class memory counters ride in the
/// Chrome export, and the accountant's ledger is conserved exactly
/// against the metrics globals — while the memoryless golden below
/// stays byte-identical.
#[test]
fn mem_run_exports_mem_section_and_conserves_ledger() {
    let (k, served) = mini_run_on(
        KernelConfig::resource_containers().with_mem(simos::MemParams::new()),
        true,
    );
    let session = rctrace::finish().expect("active session");
    assert!(served > 0);

    let g = &session.metrics.globals;
    assert!(g.mem_configured);
    let acct = k.mem_acct().expect("memory-configured kernel");
    assert_eq!(g.mem_total, acct.total());
    assert_eq!(g.mem_by_class, acct.by_class());
    assert_eq!(
        g.mem_total,
        g.mem_by_class.iter().sum::<u64>(),
        "mem conservation violated"
    );
    // The still-running server holds charged thread stacks at minimum.
    assert!(
        g.mem_total > 0,
        "nothing charged in a memory-configured run"
    );

    let chrome = chrome_trace_json(&session);
    assert!(chrome.contains("mem_bytes"), "mem counter track missing");
    assert!(
        chrome.contains("mem_stack_bytes"),
        "per-class mem counter missing"
    );
    let metrics = metrics_json(&session);
    assert!(metrics.contains("\"mem\""), "metrics mem section missing");
    assert!(
        metrics.contains("\"sockbuf\""),
        "per-class breakdown missing"
    );
}

/// A deliberately tiny ring must overflow on the mini workload, and the
/// dump must surface the loss — emitted, dropped, and retained counts —
/// instead of silently truncating the window.
#[test]
fn trace_ring_overflow_is_surfaced_in_dump() {
    let (_k, served) = mini_run_cfg(
        KernelConfig::resource_containers(),
        Some(TraceConfig {
            ring_capacity: 64,
            sample_interval: Nanos::from_millis(2),
            spans: false,
        }),
    );
    let session = rctrace::finish().expect("active session");
    assert!(served > 0);
    assert!(
        session.trace.dropped > 0,
        "a 64-slot ring survived the mini workload without overflow"
    );
    assert_eq!(
        session.trace.events.len(),
        64,
        "ring retained over capacity"
    );
    assert_eq!(
        session.trace.emitted,
        session.trace.dropped + session.trace.events.len() as u64,
        "overflow accounting does not balance"
    );
    let dump = metrics_json(&session);
    let expect = format!(
        "\"trace\":{{\"emitted\":{},\"dropped\":{},\"retained\":64}}",
        session.trace.emitted, session.trace.dropped
    );
    assert!(
        dump.contains(&expect),
        "dump does not surface the overflow: wanted {expect}"
    );
}

/// The mini workload with request spans on: the simulation itself is
/// untouched (span recording is purely observational), every minted
/// span closes with its phases summing exactly to its end-to-end
/// latency, and both exporters grow their span sections.
#[test]
fn span_enabled_mini_run_exports_span_sections() {
    let (k_off, served_off) = mini_run(false);
    let (k_on, served) = mini_run_cfg(
        KernelConfig::resource_containers(),
        Some(TraceConfig {
            ring_capacity: 1 << 16,
            sample_interval: Nanos::from_millis(2),
            spans: true,
        }),
    );
    let session = rctrace::finish().expect("active session");
    assert_eq!(served, served_off, "span recording perturbed the run");
    assert_eq!(k_off.stats().charged_cpu, k_on.stats().charged_cpu);
    assert_eq!(k_off.stats().ctx_switches, k_on.stats().ctx_switches);

    let spans = session.spans.as_ref().expect("span buffer drained");
    assert!(spans.minted > 0, "no spans minted");
    assert_eq!(spans.minted, spans.finished, "a span never closed");
    for l in &spans.ledgers {
        assert_eq!(
            l.total(),
            l.end - l.start,
            "span {} phases do not sum to its latency",
            l.request
        );
    }

    let dump = metrics_json(&session);
    assert!(
        dump.contains("\"spans\":{"),
        "metrics spans section missing"
    );
    let chrome = chrome_trace_json(&session);
    assert!(
        chrome.contains("\"cat\":\"request\""),
        "chrome request spans missing"
    );
}

/// Golden-file check on the metrics dump. Regenerate with
/// `BLESS=1 cargo test -p resource-containers --test trace_export`.
#[test]
fn metrics_dump_matches_golden() {
    let (_, _, session) = mini_session();
    let dump = metrics_json(&session);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_mini_metrics.json"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &dump).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("golden file; BLESS=1 to create");
    assert_eq!(
        dump, golden,
        "metrics dump diverged from the golden file; \
         rerun with BLESS=1 if the change is intentional"
    );
}
