//! Property tests for the `simmem` accounting engine: arbitrary
//! interleavings of hard charges, releases, and cache traffic across a
//! random container hierarchy must conserve memory exactly — the
//! accountant's kernel-wide ledger, the per-container per-class
//! breakdowns, and the buffer cache's resident bytes all describe the
//! same memory — and must never leave a limited subtree over its limit.

use proptest::prelude::*;
use rescon::{Attributes, ContainerId, ContainerTable, MemClass};
use simdisk::BufferCache;
use simos::mem::{cache_insert_accounted, charge_with_reclaim, pick_oom_victim};
use simos::{MemAccountant, MemParams};

/// An abstract operation against the memory engine.
#[derive(Clone, Debug)]
enum Op {
    /// Create a fixed-share container under the sel-th live container,
    /// with a memory limit of `limit_kib` KiB — zero meaning unlimited
    /// (overcommit of shares or nesting errors are tolerated and skipped).
    Create { parent_sel: usize, limit_kib: u16 },
    /// Charge pinned memory (a non-cache class) through
    /// `charge_with_reclaim`; refusals are legal outcomes.
    ChargeHard {
        sel: usize,
        class_sel: usize,
        kib: u16,
    },
    /// Release one previously successful hard charge.
    ReleaseHard { idx: usize },
    /// Insert a file into the buffer cache on behalf of a container.
    CacheInsert { sel: usize, file: u16, kib: u16 },
    /// Touch a file, churning LRU order so reclaim victims vary.
    CacheTouch { file: u16 },
}

const HARD_CLASSES: [MemClass; 4] = [
    MemClass::SockBuf,
    MemClass::ConnState,
    MemClass::ThreadStack,
    MemClass::Other,
];

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<usize>(), 0u16..64).prop_map(|(parent_sel, limit_kib)| Op::Create {
            parent_sel,
            limit_kib,
        }),
        (any::<usize>(), 0usize..4, 1u16..32).prop_map(|(sel, class_sel, kib)| Op::ChargeHard {
            sel,
            class_sel,
            kib
        }),
        any::<usize>().prop_map(|idx| Op::ReleaseHard { idx }),
        (any::<usize>(), 0u16..48, 1u16..16).prop_map(|(sel, file, kib)| Op::CacheInsert {
            sel,
            file,
            kib
        }),
        (0u16..48).prop_map(|file| Op::CacheTouch { file }),
    ]
}

/// Sum of every container's *own* per-class charged bytes.
fn table_class_sums(table: &ContainerTable) -> [u64; MemClass::COUNT] {
    let mut sums = [0u64; MemClass::COUNT];
    for (_, c) in table.iter() {
        for class in MemClass::ALL {
            sums[class.index()] += c.usage().mem_by_class[class.index()];
        }
    }
    sums
}

fn check_conserved(table: &ContainerTable, cache: &BufferCache, acct: &MemAccountant) {
    // 1. The accountant's total is exactly the sum of its classes.
    let by_class = acct.by_class();
    assert_eq!(
        acct.total(),
        by_class.iter().sum::<u64>(),
        "accountant total diverged from its class breakdown"
    );
    // 2. Each class ledger matches the per-container charges.
    let sums = table_class_sums(table);
    assert_eq!(
        by_class, sums,
        "accountant class ledger diverged from container charges"
    );
    // 3. Every container's own total equals its class breakdown.
    for (id, c) in table.iter() {
        let u = c.usage();
        assert_eq!(
            u.mem_bytes,
            u.mem_by_class.iter().sum::<u64>(),
            "container {id:?} mem_bytes diverged from its class breakdown"
        );
    }
    // 4. The cache's resident bytes are exactly the CachePage ledger.
    assert_eq!(
        cache.used(),
        acct.class_bytes(MemClass::CachePage),
        "cache residency diverged from the CachePage ledger"
    );
    // 5. No limited subtree sits above its limit.
    for (id, c) in table.iter() {
        if let Some(limit) = c.attrs().mem_limit {
            let used = table.subtree_mem(id).unwrap();
            assert!(
                used <= limit,
                "subtree {id:?} over its limit: {used} > {limit}"
            );
        }
    }
}

fn run_ops(ops: &[Op], global_budget: Option<u64>) {
    let mut table = ContainerTable::new();
    let mut cache = BufferCache::new(64 * 1024);
    let mut params = MemParams::new();
    if let Some(b) = global_budget {
        params = params.with_global_budget(b);
    }
    let mut acct = MemAccountant::new(params);

    let mut live: Vec<ContainerId> = vec![table.root()];
    // Successful hard charges, so releases always balance a real charge.
    let mut ledger: Vec<(ContainerId, MemClass, u64)> = Vec::new();

    for op in ops {
        match op {
            Op::Create {
                parent_sel,
                limit_kib,
            } => {
                let parent = live[parent_sel % live.len()];
                let mut attrs = Attributes::fixed_share(0.02);
                if *limit_kib > 0 {
                    attrs = attrs.with_mem_limit(*limit_kib as u64 * 1024);
                }
                if let Ok(id) = table.create(Some(parent), attrs) {
                    live.push(id);
                }
            }
            Op::ChargeHard {
                sel,
                class_sel,
                kib,
            } => {
                let c = live[sel % live.len()];
                let class = HARD_CLASSES[class_sel % HARD_CLASSES.len()];
                let bytes = *kib as u64 * 1024;
                if charge_with_reclaim(&mut table, &mut cache, &mut acct, c, class, bytes).is_ok() {
                    ledger.push((c, class, bytes));
                }
            }
            Op::ReleaseHard { idx } => {
                if !ledger.is_empty() {
                    let (c, class, bytes) = ledger.swap_remove(idx % ledger.len());
                    table
                        .release_mem_class(c, class, bytes)
                        .expect("releasing a recorded charge");
                    acct.note_release(class, bytes);
                }
            }
            Op::CacheInsert { sel, file, kib } => {
                let owner = live[sel % live.len()];
                let _ = cache_insert_accounted(
                    &mut cache,
                    &mut table,
                    &mut acct,
                    *file as u64,
                    *kib as u64 * 1024,
                    owner,
                );
            }
            Op::CacheTouch { file } => {
                let _ = cache.lookup(*file as u64);
            }
        }
        check_conserved(&table, &cache, &acct);
        table.check_invariants();
    }

    // The OOM victim, when one exists, is always a real container whose
    // own charge is the subtree maximum.
    if let Some((victim, bytes)) = pick_oom_victim(&table, table.root().as_u64()) {
        let max = table
            .iter()
            .map(|(_, c)| c.usage().mem_bytes)
            .max()
            .unwrap_or(0);
        assert_eq!(bytes, max, "victim does not hold the largest charge");
        assert!(
            table.iter().any(|(id, _)| id.as_u64() == victim),
            "victim is not a live container"
        );
    }

    // Release everything still on the ledger: the pinned classes must
    // return to zero (cache pages may legitimately stay resident).
    for (c, class, bytes) in ledger.drain(..) {
        table
            .release_mem_class(c, class, bytes)
            .expect("releasing a recorded charge");
        acct.note_release(class, bytes);
    }
    for class in HARD_CLASSES {
        assert_eq!(
            acct.class_bytes(class),
            0,
            "pinned class {class:?} leaked after releasing every charge"
        );
    }
    check_conserved(&table, &cache, &acct);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation under hierarchy limits only.
    #[test]
    fn memory_is_conserved_under_reclaim(ops in prop::collection::vec(op_strategy(), 1..80)) {
        run_ops(&ops, None);
    }

    /// Conservation with a kernel-wide budget squeezing the cache too.
    #[test]
    fn memory_is_conserved_under_global_budget(
        ops in prop::collection::vec(op_strategy(), 1..80),
        budget_kib in 16u64..128,
    ) {
        run_ops(&ops, Some(budget_kib * 1024));
    }
}
